"""CompileRequest: eager validation, immutability, and equivalence with
the keyword calling convention."""

import dataclasses

import numpy as np
import pytest

import repro
from repro.engine import BACKENDS, CompileRequest
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}


class TestValidation:
    def test_minimal_builder_request(self):
        req = CompileRequest(source="harris-halide")
        assert req.kind == "builder"
        assert req.backend == "python"

    def test_bad_source_type(self):
        with pytest.raises(TypeError, match="source must be"):
            CompileRequest(source=42)

    def test_empty_builder_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            CompileRequest(source="")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CompileRequest(source="harris-halide", backend="cuda")
        assert BACKENDS == ("python", "c")

    def test_strategy_must_expose_apply(self):
        with pytest.raises(TypeError, match=r"\.apply"):
            CompileRequest(source=harris(Identifier("rgb")), strategy="cbuf")

    def test_sizes_must_be_positive_ints(self):
        with pytest.raises(ValueError, match="positive int"):
            CompileRequest(source="harris-halide", sizes={"n": 0})
        with pytest.raises(ValueError, match="positive int"):
            CompileRequest(source="harris-halide", sizes={"n": True})
        with pytest.raises(TypeError, match="size names"):
            CompileRequest(source="harris-halide", sizes={3: 4})

    def test_sizes_must_be_a_mapping(self):
        with pytest.raises(TypeError, match="mapping"):
            CompileRequest(source="harris-halide", sizes=[("n", 4)])

    def test_options_only_for_builders(self):
        with pytest.raises(ValueError, match="builder"):
            CompileRequest(source=harris(Identifier("rgb")), options={"vec": 4})

    def test_cflags_rejects_bare_string(self):
        with pytest.raises(TypeError, match="bare string"):
            CompileRequest(source="harris-halide", cflags="-O2")

    def test_cflags_elements_must_be_strings(self):
        with pytest.raises(TypeError, match="cflags"):
            CompileRequest(source="harris-halide", cflags=("-O2", 3))

    def test_threads_bounds(self):
        with pytest.raises(ValueError, match="threads"):
            CompileRequest(source="harris-halide", threads=0)
        with pytest.raises(TypeError, match="threads"):
            CompileRequest(source="harris-halide", threads=True)

    def test_name_must_be_string(self):
        with pytest.raises(TypeError, match="name"):
            CompileRequest(source="harris-halide", name=7)


class TestImmutability:
    def test_frozen_fields(self):
        req = CompileRequest(source="harris-halide")
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.backend = "c"

    def test_mappings_are_read_only_snapshots(self):
        sizes = {"n": 12, "m": 16}
        req = CompileRequest(source="harris-halide", sizes=sizes)
        sizes["n"] = 99  # caller mutation must not leak in
        assert req.sizes["n"] == 12
        with pytest.raises(TypeError):
            req.sizes["n"] = 1

    def test_replace_revalidates(self):
        req = CompileRequest(source="harris-halide")
        assert req.replace(backend="c").backend == "c"
        with pytest.raises(ValueError, match="backend"):
            req.replace(backend="cuda")


class TestDerivedViews:
    def test_kind(self):
        assert CompileRequest(source="harris-halide").kind == "builder"
        assert CompileRequest(source=harris(Identifier("rgb"))).kind == "expr"

    def test_describe_mentions_source_and_backend(self):
        req = CompileRequest(source="harris-halide", backend="python")
        assert "harris-halide" in req.describe()
        assert "python" in req.describe()

    def test_to_dict_is_json_ready(self):
        import json

        req = CompileRequest(
            source=harris(Identifier("rgb")),
            strategy=cbuf_version(SENV, chunk=4),
            type_env=SENV,
            sizes={"n": 12, "m": 16},
            name="h",
        )
        doc = req.to_dict()
        json.dumps(doc)  # must serialize
        assert doc["kind"] == "expr"
        assert doc["sizes"] == {"n": 12, "m": 16}
        assert doc["type_env"] == ["rgb"]


class TestEngineIntegration:
    def test_request_and_kwargs_share_one_cache_key(self, fresh_engine):
        expr = harris(Identifier("rgb"))
        strategy = cbuf_version(SENV, chunk=4)
        via_kwargs = fresh_engine.compile(
            expr, strategy=strategy, type_env=SENV, sizes={"n": 12, "m": 16}
        )
        via_request = fresh_engine.compile(
            CompileRequest(
                source=expr, strategy=strategy, type_env=SENV,
                sizes={"n": 12, "m": 16},
            )
        )
        assert via_kwargs.key == via_request.key
        assert via_kwargs.cache_status == "miss"
        assert via_request.cache_status == "hit-memory"

    def test_report_echoes_the_request(self, fresh_engine):
        pipeline = fresh_engine.compile(
            CompileRequest(source="harris-halide", options={"vec": 4, "split": 4})
        )
        report = pipeline.report()
        assert report["request"]["source"] == "harris-halide"
        assert report["request"]["options"] == {"vec": 4, "split": 4}
        assert report["cache"] == "miss"

    def test_module_compile_accepts_request(self, small_image):
        pipeline = repro.compile(
            CompileRequest(
                source="harris-halide",
                options={"vec": 4, "split": 4},
                sizes={"n": 8, "m": 12},
            )
        )
        out = pipeline.run(rgb=small_image)
        assert out.shape == (8 * 12,)
        assert np.isfinite(out).all()
