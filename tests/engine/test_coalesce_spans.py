"""Singleflight observability: follower spans link to the leader's build.

The acceptance scenario of the request-observability work: N threads
racing on one cold key produce exactly one leader span tree (the build)
plus N-1 follower ``engine.compile`` spans, each carrying the leader's
``span_id``/``request_id`` in its meta and an ``engine.coalesced``
event — so a trace of a thundering herd shows who actually built and
who drafted behind them.
"""

import threading

from repro.engine import CompileRequest, Engine
from repro.observe import Observer, observing
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq

xs = Identifier("xs")
ENV = {"xs": array("n", f32)}


def _request() -> CompileRequest:
    """Structurally identical requests (one cache key, distinct request_ids)."""
    return CompileRequest(
        source=map_seq(fun(lambda v: v * lit(7.0)), xs),
        type_env=ENV,
        name="scale7",
    )


class _GatedEngine(Engine):
    """An engine whose build blocks until the test releases it."""

    def __init__(self, started: threading.Event, release: threading.Event):
        super().__init__()
        self._started = started
        self._release = release

    def _build_program(self, *args, **kwargs):
        self._started.set()
        assert self._release.wait(timeout=30), "test never released the build"
        return super()._build_program(*args, **kwargs)


class TestCoalesceSpans:
    N = 6

    def _compile_spans(self, observer: Observer) -> list:
        return [s for s in observer.flat_spans() if s.name == "engine.compile"]

    def test_race_links_followers_to_leader(
        self, fresh_metrics_registry, fresh_event_log
    ):
        started, release = threading.Event(), threading.Event()
        engine = _GatedEngine(started, release)
        requests = [_request() for _ in range(self.N)]
        followers_ready = threading.Barrier(self.N, timeout=30)
        results: dict[int, tuple[Observer, str]] = {}
        results_lock = threading.Lock()

        def racer(index: int, wait_at_barrier: bool):
            # threads do not inherit contextvars: each racer activates its
            # own observer, exactly like independent library callers
            with observing() as obs:
                if wait_at_barrier:
                    followers_ready.wait()
                pipeline = engine.compile(requests[index])
                with results_lock:
                    results[index] = (obs, pipeline.cache_status)

        threads = [threading.Thread(target=racer, args=(0, False))]
        threads[0].start()
        assert started.wait(timeout=30), "leader never reached the build"
        threads += [
            threading.Thread(target=racer, args=(i, True))
            for i in range(1, self.N)
        ]
        for t in threads[1:]:
            t.start()
        followers_ready.wait()  # all followers running...
        release.wait(0.25)  # ...and into the in-flight wait
        release.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()

        statuses = [results[i][1] for i in range(self.N)]
        assert statuses[0] == "miss"
        assert statuses[1:] == ["coalesced"] * (self.N - 1)

        # exactly one leader tree: the miss observer has the build spans
        leader_obs = results[0][0]
        (leader_span,) = self._compile_spans(leader_obs)
        assert leader_span.meta["cache"] == "miss"
        assert leader_span.span_id
        assert leader_span.request_id == requests[0].request_id
        assert any(
            s.name == "backend.lower" for s in leader_obs.flat_spans()
        ), "leader tree is missing the build phase"

        # every follower span carries the leader's identity
        for i in range(1, self.N):
            follower_obs = results[i][0]
            (follower_span,) = self._compile_spans(follower_obs)
            assert follower_span.meta["cache"] == "coalesced"
            assert follower_span.request_id == requests[i].request_id
            assert follower_span.request_id != leader_span.request_id
            assert follower_span.meta["leader_span_id"] == leader_span.span_id
            assert (
                follower_span.meta["leader_request_id"] == leader_span.request_id
            )
            # followers never ran the build themselves
            assert not any(
                s.name == "backend.lower" for s in follower_obs.flat_spans()
            )

        # and said so in the event log
        coalesced = [
            r for r in fresh_event_log.events() if r["event"] == "engine.coalesced"
        ]
        assert len(coalesced) == self.N - 1
        for record in coalesced:
            assert record["attrs"]["leader_span_id"] == leader_span.span_id
            assert record["attrs"]["leader_request_id"] == leader_span.request_id
        follower_ids = {r["request_id"] for r in coalesced}
        assert follower_ids == {requests[i].request_id for i in range(1, self.N)}

    def test_uncontended_compile_has_no_leader_links(
        self, fresh_metrics_registry, fresh_event_log
    ):
        engine = Engine()
        with observing() as obs:
            pipeline = engine.compile(_request())
        assert pipeline.cache_status == "miss"
        (compile_span,) = self._compile_spans(obs)
        assert "leader_span_id" not in compile_span.meta
        assert not [
            r for r in fresh_event_log.events() if r["event"] == "engine.coalesced"
        ]
