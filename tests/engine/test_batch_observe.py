"""Concurrent observability: batch workers must not drop or corrupt
spans/counters (the observer context propagates into pool threads, and
process-pool timings aggregate back into the parent observer)."""

import threading

import pytest

from repro.engine import Engine
from repro.image import synthetic_rgb
from repro.observe import Observer, observing
from repro.observe.traceevent import trace_events
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 12, "m": 16}
N_ITEMS = 8


@pytest.fixture(scope="module")
def pipeline():
    return Engine().compile(
        harris(Identifier("rgb")),
        strategy=cbuf_version(SENV, chunk=4),
        type_env=SENV,
        sizes=SIZES,
        name="harris_batch_obs",
    )


@pytest.fixture(scope="module")
def items():
    return [{"rgb": synthetic_rgb(16, 20, seed=s)} for s in range(N_ITEMS)]


def _batch_span(obs):
    roots = [s for s in obs.spans if s.name == "engine.batch"]
    assert len(roots) == 1, [s.name for s in obs.spans]
    return roots[0]


class TestThreadPoolEmission:
    def test_every_item_counter_is_recorded(self, pipeline, items):
        with observing() as obs:
            batch = pipeline.run_batch(items, workers=2, mode="thread")
        assert batch.mode == "thread"
        # the satellite fix: before context propagation these were 0
        assert obs.counters["engine.batch.item"] == N_ITEMS
        assert obs.counters["engine.batch.items"] == N_ITEMS
        assert obs.counters["engine.batch.runs"] == 1

    def test_span_tree_is_well_formed(self, pipeline, items):
        with observing() as obs:
            pipeline.run_batch(items, workers=2, mode="thread")
        batch = _batch_span(obs)
        item_spans = [c for c in batch.children if c.name == "engine.batch.item"]
        assert len(item_spans) == N_ITEMS
        assert sorted(s.meta["index"] for s in item_spans) == list(range(N_ITEMS))
        for s in item_spans:
            # each item nests its own engine.run (no cross-thread mixing)
            child_names = {c.name for c in s.children}
            assert child_names == {"engine.run"}
            assert s.duration_ms >= 0.0
            assert s.tid > 0

    def test_trace_export_has_item_events(self, pipeline, items):
        with observing() as obs:
            pipeline.run_batch(items, workers=2, mode="thread")
        events = [e for e in trace_events(obs) if e["ph"] == "X"]
        item_events = [e for e in events if e["name"] == "engine.batch.item"]
        assert len(item_events) == N_ITEMS
        # workers record real thread ids; with >1 worker the pool *may*
        # interleave, but every tid must be a live thread-ident-shaped int
        assert all(e["tid"] > 0 for e in item_events)


class TestProcessPoolEmission:
    def test_item_counters_survive_process_workers(self, pipeline, items):
        with observing() as obs:
            batch = pipeline.run_batch(items, workers=2, mode="process")
        # sandboxes without fork degrade to sequential; both paths must
        # record exactly one engine.batch.item per input
        assert batch.mode in ("process", "sequential")
        assert obs.counters["engine.batch.item"] == N_ITEMS
        batch_span = _batch_span(obs)
        item_spans = [c for c in batch_span.children if c.name == "engine.batch.item"]
        assert len(item_spans) == N_ITEMS
        assert all(s.duration_ms > 0 for s in item_spans)


class TestObserverConcurrency:
    def test_concurrent_counts_are_exact(self):
        obs = Observer()

        def hammer():
            for _ in range(1000):
                obs.count("x")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obs.counters["x"] == 8000

    def test_concurrent_spans_do_not_corrupt_the_tree(self):
        obs = Observer()

        def worker(i):
            with obs.span(f"w{i}"):
                for j in range(50):
                    with obs.span(f"w{i}.{j}"):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 8 roots, each with exactly its own 50 children — no strays
        assert sorted(s.name for s in obs.spans) == sorted(f"w{i}" for i in range(8))
        for root in obs.spans:
            assert len(root.children) == 50
            assert all(c.name.startswith(root.name + ".") for c in root.children)
        assert len(obs.flat_spans()) == 8 * 51
