"""Cache behavior: warm compiles must skip every compiler phase, and the
disk tier must warm-start a brand-new engine without recompiling."""

import numpy as np
import pytest

from repro.engine import Engine
from repro.image import synthetic_rgb, reference
from repro.observe import ProfileCollector, profiling
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 12, "m": 16}


def compile_harris(engine):
    return engine.compile(
        harris(Identifier("rgb")),
        strategy=cbuf_version(SENV, chunk=4),
        type_env=SENV,
        sizes=SIZES,
        name="harris_cbuf",
    )


class TestWarmPath:
    def test_second_compile_hits_memory_without_any_compile_phase(self):
        eng = Engine()
        cold = compile_harris(eng)
        assert cold.cache_status == "miss"

        warm_profiles = ProfileCollector()
        with profiling(warm_profiles):
            warm = compile_harris(eng)
        assert warm.cache_status == "hit-memory"
        # acceptance criterion: zero lowering-phase spans on the hit path
        phases = [
            p.name
            for prof in warm_profiles.profiles.values()
            for p in prof.phases.values()
        ]
        assert "lower" not in phases
        assert phases == []
        # and at least 5x cheaper in wall time (observed: >1000x)
        assert warm.compile_ms * 5 < cold.compile_ms
        # same artifact either way
        assert warm.key == cold.key
        assert warm.program is cold.program

    def test_hit_miss_accounting(self):
        eng = Engine()
        compile_harris(eng)
        compile_harris(eng)
        compile_harris(eng)
        stats = eng.stats()
        assert stats["misses"] == 1
        assert stats["memory_hits"] == 2
        assert stats["hits"] == 2
        assert stats["stores"] == 1
        assert stats["memory_entries"] == 1

    def test_warm_output_matches_cold(self):
        eng = Engine()
        img = synthetic_rgb(16, 20, seed=5)
        cold_out = compile_harris(eng).run(rgb=img)
        warm_out = compile_harris(eng).run(rgb=img)
        np.testing.assert_array_equal(cold_out, warm_out)
        ref = reference.harris(img)
        np.testing.assert_allclose(
            cold_out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4
        )


class TestDiskTier:
    def test_fresh_engine_warm_starts_from_disk(self, tmp_path):
        first = Engine(cache_dir=tmp_path)
        cold = compile_harris(first)
        assert cold.cache_status == "miss"
        assert first.stats()["disk_store"] == str(tmp_path)

        # a brand-new engine (think: new process) finds the artifact on disk
        second = Engine(cache_dir=tmp_path)
        warm = compile_harris(second)
        assert warm.cache_status == "hit-disk"
        assert warm.key == cold.key
        stats = second.stats()
        assert stats["disk_hits"] == 1 and stats["misses"] == 0

        img = synthetic_rgb(16, 20, seed=5)
        np.testing.assert_array_equal(cold.run(rgb=img), warm.run(rgb=img))

    def test_disk_artifact_layout(self, tmp_path):
        eng = Engine(cache_dir=tmp_path)
        pipeline = compile_harris(eng)
        adir = tmp_path / pipeline.key[:2] / pipeline.key
        assert (adir / "meta.json").is_file()
        assert (adir / "program.pkl").is_file()
        meta = (adir / "meta.json").read_text()
        assert pipeline.key in meta and "artifact_bytes" in meta


class TestEviction:
    def test_lru_respects_memory_slots(self):
        eng = Engine(memory_slots=1)
        a = eng.compile("harris-halide", options={"vec": 4, "split": 4})
        b = eng.compile("harris-opencv", options={"vec": 4})
        assert a.key != b.key
        assert eng.stats()["memory_entries"] == 1
        # the evicted builder recompiles: a second miss, not a hit
        eng.compile("harris-halide", options={"vec": 4, "split": 4})
        assert eng.stats()["misses"] == 3

    def test_unknown_builder_and_backend_are_rejected(self):
        eng = Engine()
        with pytest.raises(KeyError, match="harris-halide"):
            eng.compile("no-such-builder")
        with pytest.raises(ValueError, match="backend"):
            eng.compile("harris-halide", backend="cuda")
