"""ArtifactStore durability: atomic publish, bounded eviction, orphan sweep.

The store's contract is "a reader sees a complete artifact or nothing":
a failed save (pickling included) must leave the published tree and the
staging area clean, eviction must unpublish atomically, and crashed
writers' staging dirs must be reclaimed — with the ``engine.cache.*``
metrics recording each of those events.
"""

import os
import time

import pytest

from repro.codegen import compile_program
from repro.engine.cache import ArtifactStore, CacheEntry, FileLock
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq


@pytest.fixture(scope="module")
def program():
    xs = Identifier("xs")
    return compile_program(
        map_seq(fun(lambda v: v * lit(2.0)), xs), {"xs": array("n", f32)}, "dbl"
    )


def _entry(program, key: str) -> CacheEntry:
    return CacheEntry(key=key, program=program, backend="python")


class _Unpicklable:
    def __reduce__(self):
        raise RuntimeError("refuses to pickle")


class TestAtomicSave:
    def test_failed_pickle_leaves_no_partial_artifact(self, tmp_path, program):
        store = ArtifactStore(tmp_path)
        bad = CacheEntry(key="ff" * 20, program=_Unpicklable(), backend="python")
        with pytest.raises(RuntimeError, match="refuses to pickle"):
            store.save(bad)
        assert not store.contains(bad.key)
        assert list(store.entries()) == []
        tmp_root = tmp_path / ".tmp"
        leftovers = list(tmp_root.iterdir()) if tmp_root.is_dir() else []
        assert leftovers == [], "staging dir leaked after failed save"

    def test_save_then_load_roundtrip(self, tmp_path, program):
        store = ArtifactStore(tmp_path)
        key = "ab" * 20
        meta = store.save(_entry(program, key))
        assert meta["backend"] == "python"
        assert meta["artifact_bytes"] > 0
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.program.name == program.name

    def test_publish_race_returns_winners_meta(self, tmp_path, program):
        store = ArtifactStore(tmp_path)
        key = "cd" * 20
        first = store.save(_entry(program, key))
        second = store.save(_entry(program, key))  # loses the race by arriving late
        assert second["key"] == first["key"]
        assert store.contains(key)


class TestEviction:
    def test_evict_removes_and_counts(self, tmp_path, program, fresh_metrics_registry):
        store = ArtifactStore(tmp_path)
        key = "ee" * 20
        store.save(_entry(program, key))
        assert store.evict(key)
        assert not store.contains(key)
        assert not store.evict(key)  # second call: already gone
        evictions = fresh_metrics_registry.counter(
            "engine.cache.evictions", tier="disk"
        )
        assert evictions.snapshot()["value"] == 1

    def test_max_entries_drops_oldest_and_keeps_newest(self, tmp_path, program):
        store = ArtifactStore(tmp_path, max_entries=2)
        keys = [f"{i:02d}" * 20 for i in range(4)]
        for key in keys:
            store.save(_entry(program, key))
            time.sleep(0.01)  # distinct publish mtimes for age ordering
        published = {key for key, _ in store.entries()}
        assert len(published) == 2
        assert keys[-1] in published, "the just-published key must survive"
        assert keys[0] not in published, "the oldest key must go first"

    def test_max_bytes_bounds_the_store(self, tmp_path, program):
        store = ArtifactStore(tmp_path, max_bytes=1)  # nothing fits but `keep`
        a, b = "aa" * 20, "bb" * 20
        store.save(_entry(program, a))
        store.save(_entry(program, b))
        published = {key for key, _ in store.entries()}
        assert published == {b}


class TestOrphanSweep:
    def test_old_staging_dirs_reclaimed_fresh_kept(
        self, tmp_path, fresh_metrics_registry
    ):
        store = ArtifactStore(tmp_path)
        tmp_root = tmp_path / ".tmp"
        tmp_root.mkdir(parents=True)
        old = tmp_root / "deadkey.123.abc"
        old.mkdir()
        stale = time.time() - 7200
        os.utime(old, (stale, stale))
        fresh = tmp_root / "livekey.456.def"
        fresh.mkdir()
        reclaimed = store.sweep_orphans()
        assert reclaimed == 1
        assert not old.exists()
        assert fresh.exists(), "a live writer's staging dir must survive"
        swept = fresh_metrics_registry.counter("engine.cache.orphans_swept")
        assert swept.snapshot()["value"] == 1

    def test_first_save_sweeps(self, tmp_path, program):
        store = ArtifactStore(tmp_path)
        tmp_root = tmp_path / ".tmp"
        tmp_root.mkdir(parents=True)
        old = tmp_root / "deadkey.123.abc"
        old.mkdir()
        stale = time.time() - 7200
        os.utime(old, (stale, stale))
        store.save(_entry(program, "0f" * 20))
        assert not old.exists()


class TestFileLock:
    def test_lock_creates_file_and_is_reusable(self, tmp_path):
        path = tmp_path / "locks" / "k.lock"
        with FileLock(path):
            assert path.is_file()
        with FileLock(path, shared=True):
            pass  # shared re-acquisition after release works
