"""Concurrent compiles build each key exactly once.

Two layers, two tests:

* **threads** — N threads racing on one engine coalesce onto a single
  in-flight build (the singleflight layer): one ``"miss"``, N-1
  ``"coalesced"``, and the ``engine.compile.coalesced`` counter says so.
* **processes** — N processes racing on one shared artifact store elect
  exactly one builder per key through the store's build lock: one
  ``"miss"`` across the fleet, everyone else warm-starts ``"hit-disk"``,
  and every process gets a correct, uncorrupted program.
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.engine import CompileRequest, Engine
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq

xs = Identifier("xs")
ENV = {"xs": array("n", f32)}


def _scale_request(factor: float) -> CompileRequest:
    return CompileRequest(
        source=map_seq(fun(lambda v: v * lit(factor)), xs),
        type_env=ENV,
        name=f"scale{int(factor)}",
    )


class _GatedEngine(Engine):
    """An engine whose build blocks until the test releases it."""

    def __init__(self, started: threading.Event, release: threading.Event):
        super().__init__()
        self._started = started
        self._release = release

    def _build_program(self, *args, **kwargs):
        self._started.set()
        assert self._release.wait(timeout=30), "test never released the build"
        return super()._build_program(*args, **kwargs)


class TestThreadCoalescing:
    N = 8

    def test_n_threads_one_build(self, fresh_metrics_registry):
        started, release = threading.Event(), threading.Event()
        engine = _GatedEngine(started, release)
        request = _scale_request(2.0)
        statuses: list[str] = []
        statuses_lock = threading.Lock()
        followers_ready = threading.Barrier(self.N, timeout=30)

        def leader():
            pipeline = engine.compile(request)
            with statuses_lock:
                statuses.append(pipeline.cache_status)

        def follower():
            followers_ready.wait()
            pipeline = engine.compile(request)
            with statuses_lock:
                statuses.append(pipeline.cache_status)

        threads = [threading.Thread(target=leader)]
        threads[0].start()
        assert started.wait(timeout=30), "leader never reached the build"
        threads += [
            threading.Thread(target=follower) for _ in range(self.N - 1)
        ]
        for t in threads[1:]:
            t.start()
        followers_ready.wait()  # all followers are past the barrier...
        release.wait(0.25)  # ...and through key computation into the flight
        release.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()

        assert sorted(statuses) == ["coalesced"] * (self.N - 1) + ["miss"]
        coalesced = fresh_metrics_registry.counter("engine.compile.coalesced")
        assert coalesced.snapshot()["value"] == self.N - 1
        # every request missed the lookup, but only one build was stored
        assert engine.cache.stats.misses == self.N
        assert engine.cache.stats.stores == 1

    def test_followers_share_the_leaders_failure(self, fresh_metrics_registry):
        started, release = threading.Event(), threading.Event()
        engine = _GatedEngine(started, release)
        request = CompileRequest(source="no-such-builder")
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def call():
            try:
                engine.compile(request)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                with errors_lock:
                    errors.append(exc)

        first = threading.Thread(target=call)
        first.start()
        assert started.wait(timeout=30)
        second = threading.Thread(target=call)
        second.start()
        release.wait(0.25)
        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert len(errors) == 2
        assert all(isinstance(e, KeyError) for e in errors)


# -- multiprocess stress ------------------------------------------------------


def _stress_worker(cache_dir, order, barrier, results):
    """Compile every request (rotated start) against the shared store."""
    engine = Engine(cache_dir=cache_dir)
    data = np.arange(6.0, dtype=np.float32)
    barrier.wait(timeout=60)
    out = []
    for factor in order:
        pipeline = engine.compile(_scale_request(float(factor)))
        result = pipeline.run(sizes={"n": 6}, xs=data)
        correct = bool(np.allclose(result, data * factor))
        out.append((factor, pipeline.cache_status, correct))
    results.put(out)


class TestMultiprocessStore:
    PROCESSES = 8
    FACTORS = (2, 3, 5)

    def test_eight_processes_build_each_key_once(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(self.PROCESSES)
        results = ctx.Queue()
        procs = []
        for i in range(self.PROCESSES):
            # rotate the start key so several keys build concurrently
            order = [
                self.FACTORS[(i + j) % len(self.FACTORS)]
                for j in range(len(self.FACTORS))
            ]
            procs.append(
                ctx.Process(
                    target=_stress_worker,
                    args=(str(tmp_path / "store"), order, barrier, results),
                )
            )
        for p in procs:
            p.start()
        rows = []
        for _ in procs:
            rows.extend(results.get(timeout=120))
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        assert len(rows) == self.PROCESSES * len(self.FACTORS)
        assert all(correct for _, _, correct in rows), "corrupt load observed"
        for factor in self.FACTORS:
            statuses = sorted(s for f, s, _ in rows if f == factor)
            assert statuses.count("miss") == 1, (
                f"key for factor {factor} built {statuses.count('miss')} times: "
                f"{statuses}"
            )
            assert set(statuses) <= {"miss", "hit-disk", "hit-memory"}

    def test_store_holds_exactly_the_built_keys(self, tmp_path):
        store_dir = tmp_path / "store2"
        engine = Engine(cache_dir=store_dir)
        for factor in self.FACTORS:
            engine.compile(_scale_request(float(factor)))
        published = list(engine.cache.store.entries())
        assert len(published) == len(self.FACTORS)
        for key, adir in published:
            assert (adir / "meta.json").is_file()
            assert (adir / "program.pkl").is_file()
        # a second engine over the same store warm-starts every key
        warm = Engine(cache_dir=store_dir)
        for factor in self.FACTORS:
            assert warm.compile(_scale_request(float(factor))).cache_status == (
                "hit-disk"
            )
