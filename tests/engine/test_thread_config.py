"""Thread configuration must enter the compile cache key and flow from
``Engine.compile`` through ``CompiledPipeline.run`` (no stale ``.so`` or
program reuse across thread configs, no silent sequential reuse)."""

import numpy as np
import pytest

from repro.engine.pipeline import Engine
from repro.exec import cbridge
from repro.image import reference, synthetic_rgb
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_par_version, cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 16, "m": 16}


@pytest.fixture
def engine():
    return Engine(cache_dir=None)


def compile_par(engine, threads=None, backend="python"):
    return engine.compile(
        harris(Identifier("rgb")),
        strategy=cbuf_par_version(SENV, chunk=4, vec=4, strip=2),
        type_env=SENV,
        backend=backend,
        sizes=SIZES,
        name="harris_par",
        threads=threads,
    )


class TestCacheKey:
    def test_thread_configs_key_separately(self, engine):
        keys = {compile_par(engine, threads=t).key for t in (None, 1, 2, 4)}
        assert len(keys) == 4

    def test_same_thread_config_is_a_hit(self, engine):
        cold = compile_par(engine, threads=2)
        warm = compile_par(engine, threads=2)
        assert cold.cache_status == "miss"
        assert warm.cache_status == "hit-memory"
        assert warm.key == cold.key

    def test_effective_cflags_enter_c_key(self, engine):
        """A .so keyed under sequential flags must never be served to an
        OpenMP-capable flag set: the key is computed from *effective*
        flags, so toggling toolchain support changes the key."""
        high = harris(Identifier("rgb"))
        strategy = cbuf_version(SENV, chunk=4, vec=4)
        args = (high, strategy, "c", SENV, None)
        key_for = lambda: engine._key_for(
            *args, cbridge.effective_cflags(("-O2",)), None
        )
        cbridge.openmp_available.cache_clear()
        try:
            import unittest.mock as mock

            with mock.patch.object(cbridge, "have_c_compiler", lambda: False):
                cbridge.openmp_available.cache_clear()
                seq_key = key_for()
            cbridge.openmp_available.cache_clear()
            omp_key = key_for()
        finally:
            cbridge.openmp_available.cache_clear()
        if cbridge.openmp_available():
            assert seq_key != omp_key
        else:
            assert seq_key == omp_key

    def test_threads_recorded_in_entry_meta(self, engine):
        pipeline = compile_par(engine, threads=3)
        entry, _ = engine.cache.get(pipeline.key)
        assert entry.meta["threads"] == 3


class TestThreadFlow:
    def test_compile_time_default_used_at_run(self, engine, fresh_metrics_registry):
        img = synthetic_rgb(20, 20, seed=3)
        pipeline = compile_par(engine, threads=2)
        out = pipeline.run(rgb=img)
        np.testing.assert_allclose(
            out.reshape(16, 16), reference.harris(img), rtol=1e-3, atol=1e-4
        )
        snap = fresh_metrics_registry.snapshot()
        gauges = {k: v for k, v in snap["gauges"].items() if "engine.run.threads" in k}
        assert gauges and all(v == 2 for v in gauges.values())

    def test_per_run_override_beats_compile_default(
        self, engine, fresh_metrics_registry
    ):
        img = synthetic_rgb(20, 20, seed=3)
        pipeline = compile_par(engine, threads=4)
        a = pipeline.run(rgb=img, threads=1)
        b = pipeline.run(rgb=img, threads=4)
        assert np.array_equal(a, b)
        snap = fresh_metrics_registry.snapshot()
        gauges = {k: v for k, v in snap["gauges"].items() if "engine.run.threads" in k}
        assert gauges and set(gauges.values()) == {4}  # gauge keeps last value

    @pytest.mark.requires_gcc
    def test_c_backend_thread_configs_do_not_share_pipelines(self, engine):
        img = synthetic_rgb(20, 20, seed=3)
        one = compile_par(engine, threads=1, backend="c")
        four = compile_par(engine, threads=4, backend="c")
        assert one.key != four.key
        assert np.array_equal(one.run(rgb=img), four.run(rgb=img))
