"""Content-addressing: structural hashes must be alpha-invariant and
stable across interpreter processes, or the disk cache could never hit."""

import os
import subprocess
import sys
from pathlib import Path

from repro.engine import (
    ENGINE_VERSION,
    cache_key,
    program_fingerprint,
    strategy_identity,
    structural_hash,
)
from repro.codegen import compile_program
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.rise.dsl import fst, fun, lit, map_, pipe, reduce_, snd, zip_
from repro.strategies import cbuf_rrot_version, cbuf_version

SENV = {"rgb": harris_input_type()}


def dot(op):
    """The paper's running example; every call generates fresh binder names."""
    a, b = Identifier("a"), Identifier("b")
    return pipe(
        zip_(a, b),
        map_(fun(lambda p: op(fst(p), snd(p)))),
        reduce_(fun(lambda acc, x: acc + x), lit(0.0)),
    )


class TestStructuralHash:
    def test_alpha_renamed_expressions_hash_equal(self):
        # two independent DSL constructions differ only in gensym'd binder
        # names -- exactly the case the de Bruijn serialization must equate
        first = dot(lambda x, y: x * y)
        second = dot(lambda x, y: x * y)
        assert repr(first) != repr(second) or first is not second
        assert structural_hash(first) == structural_hash(second)

    def test_different_expressions_hash_differently(self):
        assert structural_hash(dot(lambda x, y: x * y)) != structural_hash(
            dot(lambda x, y: x + y)
        )

    def test_free_identifiers_keep_their_names(self):
        # free (input) identifiers are part of the program's interface, so
        # renaming them MUST change the hash
        assert structural_hash(Identifier("rgb")) != structural_hash(
            Identifier("img")
        )

    def test_harris_hash_is_stable_across_processes(self):
        # the property the on-disk store depends on: a new interpreter
        # (fresh PYTHONHASHSEED) computes the same digest
        local = structural_hash(harris(Identifier("rgb")))
        script = (
            "from repro.engine import structural_hash\n"
            "from repro.pipelines import harris\n"
            "from repro.rise import Identifier\n"
            "print(structural_hash(harris(Identifier('rgb'))))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"}
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == local


class TestKeyComponents:
    def test_strategy_identity_distinguishes_parameters(self):
        # schedule names collide (both are "cbuf"); the step list carries
        # the chunk/vec parameters and must keep the keys apart
        a = strategy_identity(cbuf_version(SENV, chunk=4))
        b = strategy_identity(cbuf_version(SENV, chunk=2))
        c = strategy_identity(cbuf_rrot_version(SENV, chunk=4))
        assert len({a, b, c}) == 3
        assert strategy_identity(None) == "none"

    def test_program_fingerprint_separates_schedules(self):
        expr = harris(Identifier("rgb"))
        cbuf = compile_program(cbuf_version(SENV, chunk=4).apply(expr), SENV, "p")
        rrot = compile_program(
            cbuf_rrot_version(SENV, chunk=4).apply(expr), SENV, "p"
        )
        assert program_fingerprint(cbuf) == program_fingerprint(cbuf)
        assert program_fingerprint(cbuf) != program_fingerprint(rrot)

    def test_cache_key_is_versioned_and_part_sensitive(self):
        assert cache_key("a", "b") == cache_key("a", "b")
        assert cache_key("a", "b") != cache_key("a", "c")
        # separator-injection: ("ab","") must not equal ("a","b")
        assert cache_key("ab", "") != cache_key("a", "b")
        assert ENGINE_VERSION.startswith("repro.engine/")
