"""Batch execution: parallel fan-out must be bit-identical to a
sequential loop, whatever pool flavor actually runs."""

import numpy as np
import pytest

from repro.engine import BatchRunner, Engine
from repro.image import synthetic_rgb
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}
SIZES = {"n": 12, "m": 16}


@pytest.fixture(scope="module")
def pipeline():
    return Engine().compile(
        harris(Identifier("rgb")),
        strategy=cbuf_version(SENV, chunk=4),
        type_env=SENV,
        sizes=SIZES,
        name="harris_batch",
    )


@pytest.fixture(scope="module")
def items():
    # the acceptance bar: at least 8 distinct Harris inputs
    return [{"rgb": synthetic_rgb(16, 20, seed=s)} for s in range(8)]


class TestBatchEquivalence:
    def test_batch_is_bit_identical_to_sequential(self, pipeline, items):
        sequential = [pipeline.run(**item) for item in items]
        batch = pipeline.run_batch(items, workers=2)
        assert len(batch) == len(items)
        assert batch.mode in ("process", "sequential")  # degrades w/o fork
        for seq_out, batch_out in zip(sequential, batch.outputs):
            np.testing.assert_array_equal(seq_out, batch_out)

    def test_thread_mode_matches_too(self, pipeline, items):
        sequential = [pipeline.run(**item) for item in items]
        batch = pipeline.run_batch(items, workers=2, mode="thread")
        for seq_out, batch_out in zip(sequential, batch.outputs):
            np.testing.assert_array_equal(seq_out, batch_out)

    def test_order_is_preserved(self, pipeline, items):
        # items are distinct images, so order mix-ups are detectable
        batch = pipeline.run_batch(items, workers=2)
        redo = pipeline.run_batch(list(reversed(items)), workers=2)
        for a, b in zip(batch.outputs, reversed(redo.outputs)):
            np.testing.assert_array_equal(a, b)


class TestBatchResult:
    def test_single_worker_runs_sequentially(self, pipeline, items):
        batch = pipeline.run_batch(items[:2], workers=1)
        assert batch.mode == "sequential"
        assert batch.workers == 1

    def test_report_shape(self, pipeline, items):
        batch = pipeline.run_batch(items, workers=2)
        d = batch.to_dict()
        assert d["items"] == 8
        assert d["workers"] == batch.workers
        assert d["mode"] == batch.mode
        assert d["total_wall_ms"] > 0
        assert d["throughput_items_per_s"] > 0
        assert len(batch.item_wall_ms) == 8

    def test_invalid_mode_is_rejected(self, pipeline):
        with pytest.raises(ValueError, match="mode"):
            BatchRunner(pipeline, mode="gpu")
