"""Regression tests for the docs link checker (``tools/check_links.py``).

The checker once treated ``# comment`` lines inside fenced code blocks as
headings, so a link to a long-deleted section passed silently as long as
some shell snippet mentioned it.  These tests pin the fixed behavior on
known-bad fixtures: phantom in-fence anchors fail, missing files fail,
and pages unreachable from ``docs/index.md`` fail as orphans.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


cl = load_checker()


def test_anchor_inside_code_fence_is_not_a_heading(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Real\n\n"
        "```bash\n"
        "# Phantom Heading\n"
        "```\n\n"
        "[ok](#real)\n"
        "[bad](#phantom-heading)\n",
        encoding="utf-8",
    )
    errors = cl.check_file(page)
    assert any("missing anchor #phantom-heading" in e for e in errors)
    assert not any("#real" in e for e in errors)


def test_links_inside_code_fences_are_not_checked(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# T\n\n```\n[example](does-not-exist.md)\n```\n", encoding="utf-8"
    )
    assert cl.check_file(page) == []


def test_missing_file_target_fails(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# T\n\n[gone](deleted-page.md)\n", encoding="utf-8")
    errors = cl.check_file(page)
    assert any("broken link deleted-page.md" in e for e in errors)


def test_stale_anchor_into_existing_page_fails(tmp_path):
    (tmp_path / "other.md").write_text("# Only Section\n", encoding="utf-8")
    page = tmp_path / "page.md"
    page.write_text("# T\n\n[stale](other.md#old-section)\n", encoding="utf-8")
    errors = cl.check_file(page)
    assert any("missing anchor other.md#old-section" in e for e in errors)


def test_orphan_docs_require_index_linkage(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("# Map\n\n[a](a.md)\n", encoding="utf-8")
    (docs / "a.md").write_text("# A\n", encoding="utf-8")
    (docs / "b.md").write_text("# B (unlinked)\n", encoding="utf-8")
    files = sorted(docs.rglob("*.md"))
    errors = cl.orphan_docs(files)
    assert len(errors) == 1
    assert "b.md" in errors[0] and "orphan" in errors[0]


def test_main_fails_on_bad_tree_and_passes_on_good_tree(tmp_path, capsys):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("# Map\n\n[a](a.md)\n", encoding="utf-8")
    (docs / "a.md").write_text("# A\n\n[back](index.md)\n", encoding="utf-8")
    assert cl.main(["check_links", str(docs)]) == 0
    (docs / "a.md").write_text("# A\n\n[bad](gone.md)\n", encoding="utf-8")
    assert cl.main(["check_links", str(docs)]) == 1
    out = capsys.readouterr().out
    assert "gone.md" in out


def test_repo_docs_tree_is_clean():
    # the shipping docs must stay link-clean and fully index-reachable
    assert cl.main(["check_links"]) == 0
