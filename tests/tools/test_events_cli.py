"""The event-log query CLI (``tools/events.py``): filters, timelines, failures."""

import json
import subprocess
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "events.py"

HEADER = {"schema": "repro.observe.events/v1"}


def _record(event, request_id, ts, seq, key=None, **attrs):
    return {
        "ts": ts,
        "seq": seq,
        "event": event,
        "request_id": request_id,
        "trace_id": "t" * 16,
        "key": key,
        "attrs": attrs,
    }


RECORDS = [
    _record("serve.admit", "req-aaa", 10.0, 0, queue_depth=1),
    _record("serve.dequeue", "req-aaa", 10.002, 1, wait_ms=2.0),
    _record("engine.build.done", "req-aaa", 10.500, 2, key="k1", outcome="ok"),
    _record("serve.complete", "req-aaa", 10.501, 3, outcome="ok", cache="miss"),
    _record("serve.admit", "req-bbb", 11.0, 4),
    _record("serve.error", "req-bbb", 11.1, 5, key="k2", outcome="error"),
    _record("serve.reject", "req-ccc", 12.0, 6, outcome="rejected"),
]


def _write_events(path, records=RECORDS):
    lines = [json.dumps(HEADER)] + [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _run(*argv):
    return subprocess.run(
        [sys.executable, str(TOOL), *argv], capture_output=True, text=True
    )


class TestFilters:
    def test_dump_all(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path))
        assert proc.returncode == 0, proc.stderr
        assert len(proc.stdout.strip().splitlines()) == len(RECORDS)
        assert "7 events" in proc.stderr

    def test_filter_by_request(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path), "--request", "req-bbb", "--json")
        records = json.loads(proc.stdout)
        assert [r["event"] for r in records] == ["serve.admit", "serve.error"]

    def test_filter_by_key(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path), "--key", "k1", "--json")
        records = json.loads(proc.stdout)
        assert [r["event"] for r in records] == ["engine.build.done"]

    def test_filter_by_outcome(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path), "--outcome", "error", "--json")
        records = json.loads(proc.stdout)
        assert [r["request_id"] for r in records] == ["req-bbb"]

    def test_empty_match_still_exits_zero(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path), "--request", "req-nobody")
        assert proc.returncode == 0
        assert proc.stdout.strip() == ""


class TestTimeline:
    def test_timeline_orders_and_offsets_one_request(self, tmp_path):
        path = tmp_path / "events.jsonl"
        # shuffled on disk: the timeline must re-order by (ts, seq)
        _write_events(path, list(reversed(RECORDS)))
        proc = _run(str(path), "--timeline", "req-aaa")
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("+    0.000ms")
        assert "serve.admit" in lines[0]
        assert "serve.complete" in lines[-1]
        assert "+  501.000ms" in lines[-1]


class TestFailures:
    def test_last_n_failures(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_events(path)
        proc = _run(str(path), "--failures", "1", "--json")
        records = json.loads(proc.stdout)
        assert [r["event"] for r in records] == ["serve.reject"]
        proc = _run(str(path), "--failures", "10", "--json")
        records = json.loads(proc.stdout)
        assert [r["event"] for r in records] == ["serve.error", "serve.reject"]


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path):
        proc = _run(str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2
        assert "no such file" in proc.stderr

    def test_unknown_schema_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/v9"}\n')
        proc = _run(str(path))
        assert proc.returncode == 2
        assert "unknown event schema" in proc.stderr

    def test_non_json_line_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(HEADER) + "\nnot json\n")
        proc = _run(str(path))
        assert proc.returncode == 2
        assert "not JSON" in proc.stderr
