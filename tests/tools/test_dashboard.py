"""The static serving dashboard (``tools/dashboard.py``) renders offline."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "dashboard.py"


def _run(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, str(TOOL), *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


def _trajectory(samples):
    return {"schema": "repro.bench.trajectory/v1", "samples": samples}


def _sample(cells, counters=None, histograms=None, sha="aaa1111"):
    return {
        "schema": "repro.bench.sample/v1",
        "timestamp": 0.0,
        "git_sha": sha,
        "k": 1,
        "environment": {},
        "cells": cells,
        "metrics": {
            "counters": counters or {},
            "gauges": {},
            "histograms": histograms or {},
        },
    }


def _write_trajectory(path, samples):
    path.write_text(json.dumps(_trajectory(samples)), encoding="utf-8")


class TestRender:
    def test_renders_synthetic_trajectory_offline(self, tmp_path):
        traj = tmp_path / "traj.json"
        _write_trajectory(
            traj,
            [
                _sample({"A53|small|Halide": 100.0, "serve|p50|cold_jit_ms": 50.0}),
                _sample(
                    {"A53|small|Halide": 95.0, "serve|p50|cold_jit_ms": 48.0},
                    counters={
                        "serve.requests": 36,
                        "engine.cache.hits{tier=memory}": 20,
                        "engine.compile.misses": 4,
                    },
                    histograms={
                        "serve.compile_ms{family=warm}": {
                            "count": 32, "min": 1.0, "p50": 2.0,
                            "p90": 3.0, "p99": 4.0, "max": 5.0,
                        }
                    },
                    sha="bbb2222",
                ),
            ],
        )
        out = tmp_path / "dash.html"
        proc = _run("--trajectory", str(traj), "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        html = out.read_text(encoding="utf-8")
        # self-contained: no external scripts, styles or images
        assert "<script src" not in html
        assert "http://" not in html and "https://" not in html
        # the sections all rendered with real content
        assert "serve-availability" in html
        assert "serve-latency" in html
        assert "A53|small|Halide" in html
        assert "serve|p50|cold_jit_ms" in html
        assert "bbb2222" in html

    def test_explicit_metrics_snapshot_wins(self, tmp_path):
        traj = tmp_path / "traj.json"
        _write_trajectory(traj, [_sample({"c|x|y": 1.0})])
        snap = tmp_path / "metrics.json"
        snap.write_text(json.dumps({
            "counters": {"serve.requests": 90, "serve.rejected": 10},
            "gauges": {},
            "histograms": {},
        }))
        out = tmp_path / "dash.html"
        proc = _run(
            "--trajectory", str(traj), "--metrics", str(snap), "--out", str(out)
        )
        assert proc.returncode == 0, proc.stderr
        html = out.read_text(encoding="utf-8")
        # burn > 1: the availability budget renders as exhausted
        assert "exhausted" in html

    def test_custom_title(self, tmp_path):
        traj = tmp_path / "traj.json"
        _write_trajectory(traj, [_sample({"c|x|y": 1.0})])
        out = tmp_path / "dash.html"
        proc = _run(
            "--trajectory", str(traj), "--out", str(out), "--title", "My Board"
        )
        assert proc.returncode == 0, proc.stderr
        assert "My Board" in out.read_text(encoding="utf-8")


class TestErrors:
    def test_missing_trajectory_exits_two(self, tmp_path):
        proc = _run("--trajectory", str(tmp_path / "absent.json"))
        assert proc.returncode == 2
        assert "no trajectory" in proc.stderr

    def test_wrong_schema_exits_two(self, tmp_path):
        traj = tmp_path / "bad.json"
        traj.write_text(json.dumps({"schema": "nope/v9", "samples": []}))
        proc = _run("--trajectory", str(traj))
        assert proc.returncode == 2

    def test_malformed_metrics_exits_two(self, tmp_path):
        traj = tmp_path / "traj.json"
        _write_trajectory(traj, [_sample({"c|x|y": 1.0})])
        snap = tmp_path / "metrics.json"
        snap.write_text("[1, 2, 3]")
        proc = _run("--trajectory", str(traj), "--metrics", str(snap))
        assert proc.returncode == 2
        assert "snapshot" in proc.stderr


class TestRealLedger:
    def test_renders_the_repo_trajectory(self, tmp_path):
        # the CI artifact: the shipping ledger must render cleanly
        trajectory = REPO_ROOT / "BENCH_trajectory.json"
        import pytest

        if not trajectory.is_file():
            pytest.skip("no BENCH_trajectory.json in this checkout")
        out = tmp_path / "dash.html"
        proc = _run("--trajectory", str(trajectory), "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.stat().st_size > 1000
