"""Property tests for the algebraic laws of ELEVATE combinators.

Strategy languages are algebraic structures (Hagedorn et al.); these laws
are what make large compositions like listing 5 predictable.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.elevate import (
    Failure,
    Success,
    fail,
    id_,
    lchoice,
    repeat,
    seq,
    top_down,
    try_,
)
from repro.elevate.core import Strategy, rule
from repro.rise.dsl import fun, lit, map_, pipe
from repro.rise.expr import App, Expr, Identifier, Literal


def _bump(threshold: float) -> Strategy:
    @rule(f"bump<{threshold}")
    def run(e: Expr):
        if isinstance(e, Literal) and e.value < threshold:
            return Literal(e.value + 1.0)
        return None

    return run


EXPRS = st.builds(lit, st.floats(0, 5).map(lambda v: round(v)))
THRESHOLDS = st.floats(1, 4).map(lambda v: round(v))


def _result_expr(result, original):
    return result.expr if isinstance(result, Success) else original


class TestLaws:
    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_id_is_seq_unit(self, e):
        s = _bump(3)
        left = seq(id_, s)(e)
        right = seq(s, id_)(e)
        plain = s(e)
        assert type(left) is type(plain) is type(right)
        if isinstance(plain, Success):
            assert left.expr == plain.expr == right.expr

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_fail_is_seq_zero(self, e):
        s = _bump(3)
        assert isinstance(seq(fail, s)(e), Failure)
        assert isinstance(seq(s, fail)(e), Failure)

    @given(EXPRS, THRESHOLDS, THRESHOLDS)
    @settings(max_examples=30, deadline=None)
    def test_lchoice_associative(self, e, t1, t2):
        a, b, c = _bump(t1), _bump(t2), _bump(5)
        left = lchoice(lchoice(a, b), c)(e)
        right = lchoice(a, lchoice(b, c))(e)
        assert type(left) is type(right)
        if isinstance(left, Success):
            assert left.expr == right.expr

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_lchoice_fail_unit(self, e):
        s = _bump(3)
        left = lchoice(fail, s)(e)
        right = lchoice(s, fail)(e)
        plain = s(e)
        assert type(left) is type(plain) is type(right)

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_try_never_fails(self, e):
        assert isinstance(try_(fail)(e), Success)
        assert isinstance(try_(_bump(3))(e), Success)

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_try_equals_lchoice_id(self, e):
        s = _bump(3)
        assert try_(s)(e).expr == lchoice(s, id_)(e).expr

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_repeat_reaches_fixpoint(self, e):
        s = _bump(3)
        result = repeat(s)(e)
        assert isinstance(result, Success)
        # s no longer applies to the result
        assert isinstance(s(result.expr), Failure)

    @given(EXPRS)
    @settings(max_examples=30, deadline=None)
    def test_top_down_on_leaf_equals_s(self, e):
        s = _bump(3)
        assert type(top_down(s)(e)) is type(s(e))

    @given(st.floats(0, 3).map(lambda v: round(v)))
    @settings(max_examples=20, deadline=None)
    def test_normalize_postcondition(self, v):
        """After normalize(s), s applies nowhere (paper section II-C)."""
        from repro.elevate import normalize

        s = _bump(3)
        prog = pipe(lit(v), map_(fun(lambda x: x + lit(v))))
        result = normalize(s)(prog)
        assert isinstance(result, Success)
        assert isinstance(top_down(s)(result.expr), Failure)
