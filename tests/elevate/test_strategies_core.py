"""Tests for the ELEVATE strategy combinators and traversals."""

import pytest

from repro.elevate import (
    Failure,
    StrategyError,
    Success,
    all_,
    apply_once,
    bottom_up,
    fail,
    id_,
    lchoice,
    normalize,
    one,
    repeat,
    rule,
    seq,
    some,
    top_down,
    try_,
)
from repro.rise import Identifier, Literal, alpha_equal
from repro.rise.dsl import fun, lit, map_, pipe

xs = Identifier("xs")


@rule("incrementLiteral")
def increment_literal(expr):
    if isinstance(expr, Literal) and expr.value < 3.0:
        return Literal(expr.value + 1.0)
    return None


@rule("zeroLiteral")
def zero_literal(expr):
    if isinstance(expr, Literal) and expr.value != 0.0:
        return Literal(0.0)
    return None


class TestCombinators:
    def test_id(self):
        assert isinstance(id_(xs), Success)
        assert id_(xs).expr is xs

    def test_fail(self):
        assert isinstance(fail(xs), Failure)

    def test_rule_success(self):
        result = increment_literal(lit(1.0))
        assert isinstance(result, Success)
        assert result.expr.value == 2.0

    def test_rule_failure(self):
        assert isinstance(increment_literal(xs), Failure)

    def test_seq_both(self):
        s = seq(increment_literal, increment_literal)
        assert s(lit(0.0)).expr.value == 2.0

    def test_seq_first_fails(self):
        s = seq(fail, id_)
        assert isinstance(s(xs), Failure)

    def test_seq_second_fails(self):
        s = seq(id_, fail)
        assert isinstance(s(xs), Failure)

    def test_seq_operator(self):
        s = increment_literal >> increment_literal
        assert s(lit(0.0)).expr.value == 2.0

    def test_lchoice_first(self):
        s = lchoice(increment_literal, zero_literal)
        assert s(lit(1.0)).expr.value == 2.0

    def test_lchoice_second(self):
        s = lchoice(increment_literal, zero_literal)
        # increment fails at >= 3
        assert s(lit(5.0)).expr.value == 0.0

    def test_lchoice_operator(self):
        s = increment_literal | zero_literal
        assert s(lit(5.0)).expr.value == 0.0

    def test_try_success(self):
        assert try_(increment_literal)(lit(1.0)).expr.value == 2.0

    def test_try_failure_is_identity(self):
        result = try_(increment_literal)(xs)
        assert isinstance(result, Success)
        assert result.expr is xs

    def test_repeat_until_failure(self):
        assert repeat(increment_literal)(lit(0.0)).expr.value == 3.0

    def test_repeat_never_fails(self):
        result = repeat(increment_literal)(xs)
        assert isinstance(result, Success)
        assert result.expr is xs

    def test_apply_raises_on_failure(self):
        with pytest.raises(StrategyError, match="failed"):
            fail.apply(xs)


class TestTraversals:
    def test_one_first_child(self):
        prog = lit(1.0) + lit(1.0)
        result = one(one(increment_literal))(prog)
        assert isinstance(result, Success)

    def test_one_failure(self):
        assert isinstance(one(increment_literal)(xs), Failure)

    def test_all_requires_every_child(self):
        # App(fun, arg): fun side contains no literal at depth 1
        prog = lit(1.0) + lit(2.0)
        assert isinstance(all_(increment_literal)(prog), Failure)

    def test_all_on_leaf_succeeds_vacuously(self):
        result = all_(fail)(xs)
        assert isinstance(result, Success)

    def test_some_any_child(self):
        prog = lit(1.0) + lit(2.0)  # App(App(add, 1), 2); arg=2 is a literal child
        result = some(increment_literal)(prog)
        assert isinstance(result, Success)

    def test_top_down_finds_nested(self):
        prog = map_(fun(lambda x: x + lit(1.0)), xs)
        result = top_down(increment_literal)(prog)
        assert isinstance(result, Success)

    def test_apply_once_rewrites_first_location_only(self):
        prog = lit(1.0) + lit(1.0)
        result = apply_once(increment_literal)(prog)
        assert isinstance(result, Success)
        # Exactly one of the two literals was incremented.
        literals = sorted(
            node.value
            for node in _all_literals(result.expr)
        )
        assert literals == [1.0, 2.0]

    def test_bottom_up(self):
        prog = map_(fun(lambda x: x + lit(1.0)), xs)
        result = bottom_up(increment_literal)(prog)
        assert isinstance(result, Success)

    def test_normalize_exhausts(self):
        prog = lit(0.0) + lit(1.0)
        result = normalize(increment_literal)(prog)
        assert isinstance(result, Success)
        literals = sorted(node.value for node in _all_literals(result.expr))
        assert literals == [3.0, 3.0]

    def test_normalize_after_no_location_applies(self):
        prog = lit(0.0) + lit(1.0)
        normalized = normalize(increment_literal)(prog).expr
        assert isinstance(top_down(increment_literal)(normalized), Failure)


def _all_literals(expr):
    from repro.rise.traverse import subterms

    return [node for node in subterms(expr) if isinstance(node, Literal)]
