"""Tests for rewrite tracing — the tooling for inspecting derivations."""

from repro.elevate import RewriteTrace, apply_once
from repro.rise import Identifier
from repro.rise.dsl import arr, dot
from repro.rules.algorithmic import reduce_map_fusion
from repro.strategies.schedules import Schedule, cbuf_version


class TestRewriteTrace:
    def test_records_successful_steps(self):
        trace = RewriteTrace()
        prog = dot(arr([1, 2, 3]))(Identifier("xs"))
        wrapped = trace.wrap(apply_once(reduce_map_fusion))
        wrapped(prog)
        assert len(trace.steps) == 1
        name, before, after = trace.steps[0]
        assert "reduceMapFusion" in name
        assert before is prog
        assert "reduceSeq" in repr(after)

    def test_failed_steps_not_recorded(self):
        trace = RewriteTrace()
        wrapped = trace.wrap(apply_once(reduce_map_fusion))
        wrapped(Identifier("xs"))
        assert trace.steps == []

    def test_schedule_derivation_steps(self):
        """apply_traced exposes the full listing-5 derivation: the program
        after each named strategy, usable to write out the derivation."""
        from repro.pipelines import harris, harris_input_type

        senv = {"rgb": harris_input_type()}
        schedule = cbuf_version(senv, chunk=4)
        trace = schedule.apply_traced(harris(Identifier("rgb")))
        names = [name for name, _ in trace]
        assert names[0] == "input"
        assert "fuseOperators" in names
        assert "harrisIxWithIy" in names
        # node counts change over the derivation
        from repro.rise.traverse import count_nodes

        sizes = [count_nodes(prog) for _, prog in trace]
        assert len(set(sizes)) > 3
