"""Tests for the scalar-expression vectorizer behind mapSeqVec."""

import pytest

from repro.codegen.ir import (
    Assign,
    BinOp,
    Broadcast,
    DeclScalar,
    DeclVec,
    FConst,
    IConst,
    Load,
    Var,
    VLoad,
)
from repro.codegen.vectorize import VectorizeError, affine_coefficient, vectorize_stmts
from repro.codegen.views import idx_add, idx_mul


class TestAffineCoefficient:
    def test_var_itself(self):
        assert affine_coefficient(Var("x"), "x") == (1, IConst(0))

    def test_other_var(self):
        coeff, rest = affine_coefficient(Var("y"), "x")
        assert coeff == 0 and rest == Var("y")

    def test_offset(self):
        coeff, rest = affine_coefficient(idx_add(Var("x"), IConst(3)), "x")
        assert coeff == 1 and rest == IConst(3)

    def test_scaled(self):
        coeff, _ = affine_coefficient(idx_mul(Var("x"), IConst(4)), "x")
        assert coeff == 4

    def test_sum_of_terms(self):
        e = idx_add(idx_mul(Var("x"), IConst(2)), idx_add(Var("x"), Var("y")))
        coeff, _ = affine_coefficient(e, "x")
        assert coeff == 3

    def test_nonlinear_rejected(self):
        e = BinOp("mul", Var("x"), Var("x"))
        assert affine_coefficient(e, "x") is None

    def test_mod_of_var_rejected(self):
        e = BinOp("mod", Var("x"), IConst(3))
        assert affine_coefficient(e, "x") is None


def _vec(stmts, exprs, width=4):
    return vectorize_stmts(
        stmts, exprs, "x", idx_mul(Var("s"), IConst(width)), width, lambda rest: rest == IConst(0)
    )


class TestVectorizeStmts:
    def test_unit_stride_load_becomes_vload(self):
        _, [e] = _vec([], [Load("buf", Var("x"))])
        assert isinstance(e, VLoad)
        assert e.aligned  # rest == 0

    def test_offset_load_unaligned(self):
        _, [e] = _vec([], [Load("buf", idx_add(Var("x"), IConst(1)))])
        assert isinstance(e, VLoad) and not e.aligned

    def test_invariant_load_broadcast_in_arith(self):
        expr = BinOp("mul", Load("w", Var("k")), Load("buf", Var("x")))
        _, [e] = _vec([], [expr])
        assert isinstance(e, BinOp)
        assert isinstance(e.a, Broadcast)

    def test_strided_load_fails(self):
        with pytest.raises(VectorizeError):
            _vec([], [Load("buf", idx_mul(Var("x"), IConst(2)))])

    def test_index_as_value_fails(self):
        with pytest.raises(VectorizeError):
            _vec([], [BinOp("add", Var("x"), FConst(1.0))])

    def test_scalar_decl_becomes_vector_when_varying(self):
        stmts = [DeclScalar("t", Load("buf", Var("x")))]
        out_stmts, _ = _vec(stmts, [Var("t")])
        assert isinstance(out_stmts[0], DeclVec)

    def test_invariant_decl_stays_scalar(self):
        stmts = [DeclScalar("t", Load("buf", Var("k")))]
        out_stmts, [e] = _vec(stmts, [Var("t")])
        assert isinstance(out_stmts[0], DeclScalar)
        assert isinstance(e, Broadcast)

    def test_scalar_result_broadcast(self):
        _, [e] = _vec([], [FConst(2.0)])
        assert isinstance(e, Broadcast)
