"""Tests for index folding, views, and the imperative IR utilities."""

import pytest

from repro.nat import nat
from repro.codegen.ir import (
    Assign,
    BinOp,
    Block,
    Buffer,
    DeclScalar,
    FConst,
    For,
    IConst,
    Load,
    NatE,
    Store,
    Var,
    walk_exprs,
    walk_stmts,
)
from repro.codegen.views import (
    ArrV,
    CodegenError,
    PairV,
    ScalarV,
    idx_add,
    idx_div,
    idx_mod,
    idx_mul,
    nat_expr,
)


class TestIndexFolding:
    def test_add_zero(self):
        v = Var("i")
        assert idx_add(v, IConst(0)) is v
        assert idx_add(IConst(0), v) is v

    def test_add_consts(self):
        assert idx_add(IConst(2), IConst(3)) == IConst(5)

    def test_mul_identity_and_zero(self):
        v = Var("i")
        assert idx_mul(v, IConst(1)) is v
        assert idx_mul(v, IConst(0)) == IConst(0)

    def test_mul_consts(self):
        assert idx_mul(IConst(4), IConst(5)) == IConst(20)

    def test_nat_fusion(self):
        n = nat("n")
        e = idx_add(nat_expr(n), nat_expr(nat(4)))
        assert e == NatE(n + 4) or isinstance(e, BinOp)

    def test_div_mod_consts(self):
        assert idx_div(IConst(7), IConst(3)) == IConst(2)
        assert idx_mod(IConst(7), IConst(3)) == IConst(1)

    def test_mod_one(self):
        assert idx_mod(Var("i"), IConst(1)) == IConst(0)

    def test_nat_expr_constant(self):
        assert nat_expr(nat(5)) == IConst(5)
        assert nat_expr(7) == IConst(7)

    def test_nat_expr_symbolic(self):
        assert isinstance(nat_expr(nat("n") + 1), NatE)


class TestViews:
    def test_arr_const_index(self):
        view = ArrV(nat(3), lambda i: ScalarV(IConst(0)) if i == IConst(0) else ScalarV(i))
        assert isinstance(view.at_const(0), ScalarV)

    def test_pair_projection(self):
        from repro.codegen.views import project

        p = PairV(ScalarV(IConst(1)), PairV(ScalarV(IConst(2)), ScalarV(IConst(3))))
        assert project(p, (1, 0)).expr == IConst(2)
        with pytest.raises(CodegenError):
            project(ScalarV(IConst(1)), (0,))


class TestIR:
    def test_buffer_alloc_size_includes_pad(self):
        b = Buffer("b", nat(10), pad=8)
        assert b.alloc_size() == nat(18)

    def test_walk_stmts(self):
        body = Block([DeclScalar("a", FConst(0.0)), For("i", IConst(4), Block([Assign("a", Var("a"))]))])
        kinds = [type(s).__name__ for s in walk_stmts(body)]
        assert "For" in kinds and "Assign" in kinds

    def test_walk_exprs(self):
        body = Block([Store("out", Var("i"), Load("inp", IConst(2)))])
        exprs = list(walk_exprs(body))
        assert any(isinstance(e, Load) for e in exprs)

    def test_binop_rejects_unknown(self):
        with pytest.raises(ValueError):
            BinOp("pow", IConst(1), IConst(2))
