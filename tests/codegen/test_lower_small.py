"""Codegen + execution tests on small single-pattern programs: each
low-level pattern lowers to imperative code that computes the same values
as the RISE interpreter."""

import numpy as np
import pytest

import repro
from repro.codegen import CodegenError, compile_program
from repro.nat import nat
from repro.rise import Identifier, array, array2d, f32
from repro.rise.dsl import (
    as_scalar,
    as_vector,
    circular_buffer,
    dot,
    arr,
    fst,
    fun,
    join,
    let,
    lit,
    map_,
    map_global,
    map_seq,
    map_seq_unroll,
    make_pair,
    pipe,
    reduce_seq,
    reduce_seq_unroll,
    rotate_values,
    slide,
    snd,
    split,
    to_mem,
    transpose,
    zip_,
)
from repro.rise.expr import MapSeqVec, App
from repro.rise.types import AddressSpace

xs = Identifier("xs")
img = Identifier("img")


def compile_run(prog_expr, type_env, sizes, inputs):
    prog = compile_program(prog_expr, type_env, "k")
    return repro.compile(prog, sizes=sizes).run(**inputs)


class TestElementaryPatterns:
    def test_map_seq(self):
        out = compile_run(
            map_seq(fun(lambda v: v * lit(2.0)), xs),
            {"xs": array("n", f32)}, {"n": 5}, {"xs": np.arange(5.0)},
        )
        np.testing.assert_allclose(out, np.arange(5.0) * 2)

    def test_map_global(self):
        out = compile_run(
            map_global(fun(lambda v: v + lit(1.0)), xs),
            {"xs": array("n", f32)}, {"n": 4}, {"xs": np.arange(4.0)},
        )
        np.testing.assert_allclose(out, np.arange(4.0) + 1)

    def test_map_seq_unroll(self):
        out = compile_run(
            map_seq_unroll(fun(lambda v: v * v), xs),
            {"xs": array(4, f32)}, {}, {"xs": np.arange(4.0)},
        )
        np.testing.assert_allclose(out, np.arange(4.0) ** 2)

    def test_map_seq_vec_with_tail(self):
        prog = App(App(MapSeqVec(width=nat(4)), fun(lambda v: v * lit(3.0))), xs)
        out = compile_run(prog, {"xs": array("n", f32)}, {"n": 10}, {"xs": np.arange(10.0)})
        np.testing.assert_allclose(out, np.arange(10.0) * 3)

    def test_reduce_seq(self):
        out = compile_run(
            map_seq(fun(lambda row: reduce_seq(fun(lambda a, b: a + b), lit(0.0), row)), img),
            {"img": array2d("n", "m", f32)}, {"n": 3, "m": 4},
            {"img": np.arange(12.0).reshape(3, 4)},
        )
        np.testing.assert_allclose(out, np.arange(12.0).reshape(3, 4).sum(axis=1))

    def test_reduce_seq_unroll(self):
        out = compile_run(
            map_seq(fun(lambda row: reduce_seq_unroll(fun(lambda a, b: a + b), lit(0.0), row)), img),
            {"img": array2d("n", 3, f32)}, {"n": 2}, {"img": np.arange(6.0).reshape(2, 3)},
        )
        np.testing.assert_allclose(out, [3.0, 12.0])


class TestViewPatterns:
    def test_transpose(self):
        data = np.arange(6.0).reshape(2, 3)
        out = compile_run(
            map_seq(fun(lambda r: map_seq(fun(lambda v: v), r)), transpose(img)),
            {"img": array2d(2, 3, f32)}, {}, {"img": data},
        )
        np.testing.assert_allclose(out.reshape(3, 2), data.T)

    def test_slide_windows(self):
        out = compile_run(
            map_seq(fun(lambda w: reduce_seq_unroll(fun(lambda a, b: a + b), lit(0.0), w)),
                    slide(3, 1, xs)),
            {"xs": array("n", f32)}, {"n": 6}, {"xs": np.arange(6.0)},
        )
        np.testing.assert_allclose(out, [3, 6, 9, 12])

    def test_split_join_roundtrip(self):
        out = compile_run(
            map_seq(fun(lambda v: v), join(split(2, xs))),
            {"xs": array(6, f32)}, {}, {"xs": np.arange(6.0)},
        )
        np.testing.assert_allclose(out, np.arange(6.0))

    def test_zip_projections(self):
        ys = Identifier("ys")
        out = compile_run(
            map_seq(fun(lambda p: fst(p) * snd(p)), zip_(xs, ys)),
            {"xs": array(4, f32), "ys": array(4, f32)}, {},
            {"xs": np.arange(4.0), "ys": np.arange(4.0) + 1},
        )
        np.testing.assert_allclose(out, np.arange(4.0) * (np.arange(4.0) + 1))

    def test_dot_with_weights(self):
        out = compile_run(
            map_seq(dot(arr([1, 2, 1])), slide(3, 1, xs)),
            {"xs": array(5, f32)}, {}, {"xs": np.arange(5.0)},
        )
        np.testing.assert_allclose(out, [4, 8, 12])


class TestMemoryPatterns:
    def test_to_mem(self):
        prog = map_seq(
            fun(lambda v: v + lit(1.0)),
            to_mem(AddressSpace.GLOBAL, map_seq(fun(lambda v: v * lit(2.0)), xs)),
        )
        out = compile_run(prog, {"xs": array(4, f32)}, {}, {"xs": np.arange(4.0)})
        np.testing.assert_allclose(out, np.arange(4.0) * 2 + 1)

    def test_circular_buffer_stream(self):
        load = fun(lambda v: v * lit(10.0))
        prog = map_seq(
            fun(lambda w: reduce_seq_unroll(fun(lambda a, b: a + b), lit(0.0), w)),
            circular_buffer(AddressSpace.GLOBAL, 3, load, xs),
        )
        out = compile_run(prog, {"xs": array("n", f32)}, {"n": 6}, {"xs": np.arange(6.0)})
        np.testing.assert_allclose(out, [30, 60, 90, 120])

    def test_rotate_values_scalar(self):
        prog = map_seq(
            fun(lambda w: reduce_seq_unroll(fun(lambda a, b: a + b), lit(0.0), w)),
            rotate_values(AddressSpace.PRIVATE, 3, map_seq(fun(lambda v: v * lit(2.0)), xs)),
        )
        out = compile_run(prog, {"xs": array("n", f32)}, {"n": 6}, {"xs": np.arange(6.0)})
        np.testing.assert_allclose(out, [6, 12, 18, 24])

    def test_let_shares_scalar(self):
        prog = map_seq(
            fun(lambda v: let(v * v, lambda sq: sq + sq)),
            xs,
        )
        out = compile_run(prog, {"xs": array(3, f32)}, {}, {"xs": np.arange(3.0)})
        np.testing.assert_allclose(out, 2 * np.arange(3.0) ** 2)


class TestVectors:
    def test_as_vector_roundtrip(self):
        prog = map_seq(fun(lambda v: v), as_scalar(as_vector(4, xs)))
        out = compile_run(prog, {"xs": array(8, f32)}, {}, {"xs": np.arange(8.0)})
        np.testing.assert_allclose(out, np.arange(8.0))


class TestErrors:
    def test_unbound_identifier(self):
        from repro.rise.types import TypeError_

        with pytest.raises((CodegenError, TypeError_)):
            compile_program(map_seq(fun(lambda v: v), Identifier("nope")), {}, "k")

    def test_pair_output_rejected(self):
        prog = make_pair(lit(1.0), lit(2.0))
        with pytest.raises(CodegenError):
            compile_program(prog, {}, "k")
