"""Tests for the IR optimization passes: constant folding and block CSE."""

from repro.codegen.ir import (
    Assign,
    BinOp,
    Block,
    Buffer,
    DeclScalar,
    DeclVec,
    FConst,
    For,
    IConst,
    ImpFunction,
    ImpProgram,
    Load,
    Store,
    UnOp,
    Var,
    VLoad,
    walk_stmts,
)
from repro.codegen.opt import cse_program, fold_expr, fold_program
from repro.nat import nat


class TestFoldExpr:
    def test_mul_zero(self):
        assert fold_expr(BinOp("mul", FConst(0.0), Var("x"))) == FConst(0.0)

    def test_mul_one(self):
        assert fold_expr(BinOp("mul", FConst(1.0), Var("x"))) == Var("x")

    def test_mul_minus_one_becomes_neg(self):
        e = fold_expr(BinOp("mul", FConst(-1.0), Var("x")))
        assert e == UnOp("neg", Var("x"))

    def test_add_zero(self):
        assert fold_expr(BinOp("add", FConst(0.0), Var("x"))) == Var("x")

    def test_add_neg_becomes_sub(self):
        e = fold_expr(BinOp("add", Var("a"), UnOp("neg", Var("b"))))
        assert e == BinOp("sub", Var("a"), Var("b"))

    def test_const_folding_is_float32(self):
        e = fold_expr(BinOp("mul", FConst(0.1), FConst(3.0)))
        assert isinstance(e, FConst)
        import numpy as np

        assert e.value == float(np.float32(0.1) * np.float32(3.0))

    def test_double_negation(self):
        e = fold_expr(UnOp("neg", UnOp("neg", Var("x"))))
        assert e == Var("x")

    def test_nested_folding(self):
        # (0 * x) + (1 * y)  ->  y
        e = BinOp("add", BinOp("mul", FConst(0.0), Var("x")), BinOp("mul", FConst(1.0), Var("y")))
        assert fold_expr(e) == Var("y")


def _program(stmts):
    fn = ImpFunction("k", [Buffer("inp", nat(16), 8)], Buffer("out", nat(16), 8), [], Block(stmts))
    p = ImpProgram("k", [fn], [])
    p.size_constraints = []
    p.vector_fallbacks = []
    return p


class TestCseProgram:
    def test_shared_subexpression_extracted(self):
        heavy = BinOp("mul", Load("inp", Var("i")), Load("inp", Var("i")))
        stmts = [
            Store("out", IConst(0), BinOp("add", heavy, FConst(1.0))),
            Store("out", IConst(1), BinOp("add", heavy, FConst(2.0))),
        ]
        out = cse_program(_program(stmts))
        decls = [s for s in walk_stmts(out.functions[0].body) if isinstance(s, DeclScalar)]
        assert len(decls) >= 1

    def test_store_barrier_respected(self):
        # a load from 'out' after a store to 'out' must not be CSE'd across it
        load_out = Load("out", IConst(0))
        stmts = [
            Store("out", IConst(0), load_out),
            Store("out", IConst(1), load_out),
        ]
        out = cse_program(_program(stmts))
        stores = [s for s in walk_stmts(out.functions[0].body) if isinstance(s, Store)]
        assert all(isinstance(s.value, Load) for s in stores)

    def test_index_expressions_untouched(self):
        idx = BinOp("add", Var("i"), IConst(3))
        stmts = [
            Store("out", idx, Load("inp", idx)),
            Store("out", BinOp("add", idx, IConst(1)), Load("inp", idx)),
        ]
        out = cse_program(_program(stmts))
        # indices remain structural (no float temporaries for ints)
        for s in walk_stmts(out.functions[0].body):
            if isinstance(s, Store):
                assert not isinstance(s.index, Var) or s.index == Var("i")

    def test_loops_are_boundaries(self):
        heavy = BinOp("mul", Load("inp", IConst(0)), Load("inp", IConst(0)))
        stmts = [
            Store("out", IConst(0), heavy),
            For("i", IConst(4), Block([Store("out", Var("i"), heavy)])),
        ]
        out = cse_program(_program(stmts))
        # each region CSEs independently; program still well formed
        assert any(isinstance(s, For) for s in walk_stmts(out.functions[0].body))


class TestFoldProgram:
    def test_preserves_metadata(self):
        p = _program([Store("out", IConst(0), FConst(1.0))])
        p.size_constraints = [(nat("n"), nat(4))]
        out = fold_program(p)
        assert out.size_constraints == [(nat("n"), nat(4))]
