"""Property tests for the analytic cost model: the orderings that the
paper's evaluation depends on must hold structurally."""

import numpy as np
import pytest

from repro.codegen import compile_program
from repro.codegen.ir import (
    Block,
    Buffer,
    BinOp,
    FConst,
    For,
    IConst,
    ImpFunction,
    ImpProgram,
    Load,
    LoopKind,
    Store,
    Var,
    VLoad,
    VStore,
    Broadcast,
)
from repro.nat import nat
from repro.perf import (
    ALL_MACHINES,
    CORTEX_A7,
    CORTEX_A53,
    CORTEX_A73,
    count_operations,
    estimate_runtime_ms,
    vector_load_costs,
)


def _program(body_stmts, name="k", inputs=("inp",), out_size=1 << 16):
    fn = ImpFunction(
        name,
        [Buffer(i, nat(out_size), 8) for i in inputs],
        Buffer("out", nat(out_size), 8),
        [],
        Block(body_stmts),
    )
    p = ImpProgram(name, [fn], [])
    p.size_constraints = []
    return p


def _scalar_loop(n, parallel=False):
    value = BinOp("mul", Load("inp", Var("i")), FConst(2.0))
    kind = LoopKind.PARALLEL if parallel else LoopKind.SEQ
    return _program([For("i", IConst(n), Block([Store("out", Var("i"), value)]), kind)])


def _vector_loop(n, width=4):
    value = BinOp("mul", VLoad("inp", Var("i"), width, aligned=True), Broadcast(FConst(2.0), width))
    return _program(
        [For("i", IConst(n // width), Block([VStore("out", Var("i"), value, width, True)]), LoopKind.VEC)]
    )


class TestModelOrderings:
    def test_vectorized_faster_than_scalar(self):
        n = 1 << 18
        for machine in ALL_MACHINES:
            scalar = estimate_runtime_ms(_scalar_loop(n), {}, machine)
            vector = estimate_runtime_ms(_vector_loop(n), {}, machine)
            assert vector.runtime_ms < scalar.runtime_ms, machine.name

    def test_parallel_faster_than_sequential(self):
        n = 1 << 18
        for machine in ALL_MACHINES:
            seq = estimate_runtime_ms(_scalar_loop(n), {}, machine)
            par = estimate_runtime_ms(_scalar_loop(n, parallel=True), {}, machine)
            assert par.runtime_ms < seq.runtime_ms, machine.name

    def test_parallel_speedup_bounded_by_cores(self):
        n = 1 << 18
        for machine in ALL_MACHINES:
            seq = estimate_runtime_ms(_scalar_loop(n), {}, machine)
            par = estimate_runtime_ms(_scalar_loop(n, parallel=True), {}, machine)
            assert seq.runtime_ms / par.runtime_ms <= machine.cores + 1e-6

    def test_bigger_input_costs_more(self):
        for machine in ALL_MACHINES:
            small = estimate_runtime_ms(_scalar_loop(1 << 14), {}, machine)
            big = estimate_runtime_ms(_scalar_loop(1 << 18), {}, machine)
            assert big.runtime_ms > small.runtime_ms

    def test_launch_overhead_by_runtime_kind(self):
        p = _scalar_loop(16)
        for machine in ALL_MACHINES:
            opencl = estimate_runtime_ms(p, {}, machine, "opencl")
            native = estimate_runtime_ms(p, {}, machine, "native")
            assert opencl.overhead_ms > native.overhead_ms

    def test_a73_fastest(self):
        n = 1 << 18
        times = {
            m.name: estimate_runtime_ms(_vector_loop(n), {}, m).runtime_ms
            for m in ALL_MACHINES
        }
        assert times["Cortex A73"] == min(times.values())
        # the two out-of-order cores beat the two in-order cores
        assert times["Cortex A15"] < times["Cortex A7"]
        assert times["Cortex A73"] < times["Cortex A53"]


class TestOperationCounting:
    def test_loop_multiplicity(self):
        p = _scalar_loop(1000)
        counts = count_operations(p.functions[0], {})
        assert counts.scalar_flops == 1000
        assert counts.mem_ops == 2000  # load + store per iteration

    def test_unaligned_tracked(self):
        value = VLoad("inp", Var("i"), 4, aligned=False)
        p = _program([For("i", IConst(10), Block([VStore("out", Var("i"), value, 4, True)]), LoopKind.VEC)])
        counts = count_operations(p.functions[0], {})
        assert counts.unaligned_vloads == 10

    def test_modulo_hoisted_to_its_loop(self):
        # (row % 3) computed in the outer loop must not be charged per inner
        # iteration once hoisted
        mod = BinOp("mod", Var("r"), IConst(3))
        inner = For("i", IConst(100), Block([Store("out", BinOp("add", BinOp("mul", mod, IConst(100)), Var("i")), FConst(1.0))]))
        p = _program([For("r", IConst(10), Block([inner]))])
        counts = count_operations(p.functions[0], {})
        # 10 modulo evaluations (outer loop), not 1000
        assert counts.int_ops < 10 * 3 + 1000 * 1.5 + 1


class TestVectorLoadModel:
    def test_optimized_wins_everywhere(self):
        for machine in ALL_MACHINES:
            cost = vector_load_costs(machine)
            assert cost.speedup > 1.0

    def test_inorder_benefits_more(self):
        a7 = vector_load_costs(CORTEX_A7).speedup
        a73 = vector_load_costs(CORTEX_A73).speedup
        assert a7 > a73


def _mixed_program(n_serial, n_par):
    """A kernel with a serial prologue loop followed by a PARALLEL loop,
    both doing identical per-iteration work."""
    value = BinOp("mul", Load("inp", Var("i")), FConst(2.0))
    body = lambda: Block([Store("out", Var("i"), value)])
    return _program(
        [
            For("i", IConst(n_serial), body()),
            For("i", IConst(n_par), body(), LoopKind.PARALLEL),
        ]
    )


class TestScopedParallelDivision:
    """Only cycles under a PARALLEL loop divide by cores (satellite c):
    the serial prologue of a mixed kernel must be charged at full price."""

    def test_parallel_bin_holds_only_parallel_loop_work(self):
        counts = _mixed_program(1000, 4000)
        counts = count_operations(counts.functions[0], {})
        seq_only = count_operations(_scalar_loop(1000).functions[0], {})
        par_only = count_operations(
            _scalar_loop(4000, parallel=True).functions[0], {}
        )
        assert counts.parallel is not None
        assert counts.parallel.scalar_flops == par_only.scalar_flops
        assert counts.parallel.mem_ops == par_only.mem_ops
        assert counts.scalar_flops == seq_only.scalar_flops + par_only.scalar_flops

    def test_sequential_lowering_has_empty_parallel_bin(self):
        counts = count_operations(_scalar_loop(1000).functions[0], {})
        par = counts.parallel
        assert par is None or (
            par.scalar_flops == 0 and par.mem_ops == 0 and par.int_ops == 0
        )

    def test_fully_parallel_bin_equals_totals(self):
        counts = count_operations(
            _scalar_loop(4000, parallel=True).functions[0], {}
        )
        assert counts.parallel.scalar_flops == counts.scalar_flops
        assert counts.parallel.mem_ops == counts.mem_ops

    def test_amdahl_ordering_sequential_vs_mixed_vs_parallel(self):
        n = 4000
        value = BinOp("mul", Load("inp", Var("i")), FConst(2.0))
        body = lambda: Block([Store("out", Var("i"), value)])
        all_seq = _program([For("i", IConst(n), body()), For("i", IConst(n), body())])
        mixed = _mixed_program(n, n)
        all_par = _program(
            [
                For("i", IConst(n), body(), LoopKind.PARALLEL),
                For("i", IConst(n), body(), LoopKind.PARALLEL),
            ]
        )
        for machine in ALL_MACHINES:
            # assert on the compute term: on OoO cores the (identical)
            # memory term can hide the split in total runtime
            seq_ms = estimate_runtime_ms(all_seq, {}, machine).compute_ms
            mix_ms = estimate_runtime_ms(mixed, {}, machine).compute_ms
            par_ms = estimate_runtime_ms(all_par, {}, machine).compute_ms
            if machine.cores > 1:
                assert par_ms < mix_ms < seq_ms, machine.name
            else:
                assert par_ms == pytest.approx(mix_ms) == pytest.approx(seq_ms)

    def test_mixed_speedup_matches_amdahl_on_compute(self):
        """With equal serial/parallel halves, the compute term shrinks to
        (1 + 1/cores)/2 of the sequential kernel's."""
        n = 4000
        value = BinOp("mul", Load("inp", Var("i")), FConst(2.0))
        body = lambda: Block([Store("out", Var("i"), value)])
        all_seq = _program([For("i", IConst(n), body()), For("i", IConst(n), body())])
        mixed = _mixed_program(n, n)
        machine = CORTEX_A53
        seq = estimate_runtime_ms(all_seq, {}, machine)
        mix = estimate_runtime_ms(mixed, {}, machine)
        expected = seq.compute_ms * (1 + 1 / machine.cores) / 2
        assert mix.compute_ms == pytest.approx(expected, rel=1e-6)
