"""Trace-driven cache simulation: validates the analytic memory model's
qualitative claims on small instances (DESIGN.md section 5)."""

import pytest

from repro.perf.cachesim import LRUCache, simulate_program, trace_accesses


class TestLRUCache:
    def test_cold_miss_then_hit(self):
        c = LRUCache(size_kb=1)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(4)  # same line

    def test_eviction(self):
        c = LRUCache(size_kb=1, line_bytes=64, ways=1)
        sets = c.sets
        c.access(0)
        c.access(sets * 64)  # maps to the same set, evicts
        assert not c.access(0)

    def test_lru_order(self):
        c = LRUCache(size_kb=1, line_bytes=64, ways=2)
        stride = c.sets * 64
        c.access(0)
        c.access(stride)
        c.access(0)            # refresh line 0
        c.access(2 * stride)   # evicts the stale line (stride), not 0
        assert c.access(0)
        assert not c.access(stride)

    def test_stats(self):
        c = LRUCache(size_kb=4)
        for _ in range(10):
            c.access(128)
        assert c.stats.accesses == 10
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.9


@pytest.fixture(scope="module")
def small_programs():
    import repro
    from repro.codegen import compile_program
    from repro.pipelines import harris, harris_input_type
    from repro.rise import Identifier
    from repro.strategies import cbuf_version

    senv = {"rgb": harris_input_type()}
    cbuf = compile_program(
        cbuf_version(senv, chunk=4).apply(harris(Identifier("rgb"))), senv, "cbuf"
    )
    lift = repro.compile("harris-lift").program
    return cbuf, lift


class TestTraceValidation:
    def test_trace_is_nonempty_and_bounded(self, small_programs):
        from repro.codegen.sizes import resolve_sizes

        cbuf, _ = small_programs
        sizes = resolve_sizes(cbuf, {"n": 8, "m": 12})
        trace = list(trace_accesses(cbuf.functions[0], sizes))
        assert 1_000 < len(trace) < 2_000_000
        assert any(is_store for _, _, is_store in trace)

    def test_fused_pipeline_is_l1_friendly(self, small_programs):
        """The cbuf schedule streams through small line buffers: its L1 hit
        rate must be high — the claim behind charging its temporary
        traffic to L1/L2 in the analytic model."""
        cbuf, _ = small_programs
        result = simulate_program(cbuf, {"n": 8, "m": 12})
        assert result.l1.hit_rate > 0.85

    def test_multi_kernel_produces_more_dram_traffic(self, small_programs):
        """LIFT materializes every intermediate: with caches smaller than
        the intermediates it must push more traffic past L2 than the fused
        pipeline — the ordering the analytic model encodes."""
        cbuf, lift = small_programs
        sizes = {"n": 16, "m": 128}
        # caches sized so the fused pipeline's line buffers fit but the
        # multi-kernel full-size intermediates (16x128 floats) do not
        fused = simulate_program(cbuf, sizes, l1_kb=4, l2_kb=8)
        multi = simulate_program(lift, sizes, l1_kb=4, l2_kb=8)
        assert multi.dram_bytes > 1.3 * fused.dram_bytes
