"""The pipeline registry: catalog integrity, size domains, applicability.

The registry is the contract every generic consumer (bench, AOT, tuner,
fuzzer) builds on, so these tests pin its observable behavior: the
catalog contents, the divisibility rules of ``concrete_sizes``, and the
*detected* schedule-applicability matrix — which must match the
structural reality of each pipeline, not an optimistic assertion.
"""

import numpy as np
import pytest

from repro.pipelines import registry
from repro.pipelines.registry import PipelineSpec
from repro.rise.typecheck import infer_types

EXPECTED_PIPELINES = (
    "harris",
    "gaussian-blur",
    "sobel-magnitude",
    "unsharp-mask",
    "box-blur",
    "pyramid",
)

#: The empirically verified applicability matrix at chunk=4, vec=4,
#: strip=2.  sobel-magnitude has no separable post-sharing stencil pair
#: (rotation never fires); pyramid's stride-2 slides violate the
#: unit-step requirement of buffering and rotation.
EXPECTED_APPLICABILITY = {
    "harris": {"naive", "cbuf", "cbuf-rot", "cbuf-par", "cbuf-rot-par"},
    "gaussian-blur": {"naive", "cbuf", "cbuf-rot", "cbuf-par", "cbuf-rot-par"},
    "sobel-magnitude": {"naive", "cbuf", "cbuf-par"},
    "unsharp-mask": {"naive", "cbuf", "cbuf-rot", "cbuf-par", "cbuf-rot-par"},
    "box-blur": {"naive", "cbuf", "cbuf-rot", "cbuf-par", "cbuf-rot-par"},
    "pyramid": {"naive"},
}


class TestCatalog:
    def test_registry_contains_the_zoo(self):
        assert registry.names() == EXPECTED_PIPELINES

    def test_get_unknown_raises_listing_catalog(self):
        with pytest.raises(KeyError, match="harris"):
            registry.get("no-such-pipeline")

    def test_register_duplicate_raises(self):
        spec = registry.get("box-blur")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)

    @pytest.mark.parametrize("name", EXPECTED_PIPELINES)
    def test_expr_typechecks_strict(self, name):
        spec = registry.get(name)
        typing = infer_types(spec.expr(), spec.type_env(), strict=True)
        assert typing.root_type is not None

    def test_harris_has_baselines(self):
        assert registry.get("harris").baselines == (
            "harris-halide",
            "harris-opencv",
            "harris-lift",
        )

    def test_params_defaults_flow_into_expr(self):
        spec = registry.get("unsharp-mask")
        # An override must produce a structurally different program.
        assert repr(spec.expr()) != repr(spec.expr(amount=0.0))


class TestSizeDomain:
    @pytest.mark.parametrize("name", EXPECTED_PIPELINES)
    def test_concrete_sizes_divisibility(self, name):
        spec = registry.get(name)
        sizes = spec.concrete_sizes(chunk=4, vec=4, strip=2)
        assert sizes["n"] % 8 == 0 and sizes["n"] >= spec.floor
        assert sizes["m"] % 4 == 0 and sizes["m"] >= spec.floor
        # At least two chunks, so the chunk boundary is inside the image.
        assert sizes["n"] // 8 >= 1 and sizes["n"] >= 8

    def test_unconstrained_sizes_hit_the_floor(self):
        spec = registry.get("box-blur")
        assert spec.concrete_sizes() == {"n": spec.floor, "m": spec.floor}

    @pytest.mark.parametrize("name", EXPECTED_PIPELINES)
    def test_make_inputs_match_input_shape(self, name):
        spec = registry.get(name)
        sizes = spec.concrete_sizes(chunk=4, vec=4)
        inputs = spec.make_inputs(sizes, seed=3)
        assert set(inputs) == {spec.input_name}
        arr = inputs[spec.input_name]
        assert arr.shape == spec.input_shape(sizes)
        assert arr.dtype == np.float32

    def test_make_inputs_deterministic_per_seed(self):
        spec = registry.get("gaussian-blur")
        sizes = spec.concrete_sizes()
        a = spec.make_inputs(sizes, seed=5)[spec.input_name]
        b = spec.make_inputs(sizes, seed=5)[spec.input_name]
        c = spec.make_inputs(sizes, seed=6)[spec.input_name]
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("name", EXPECTED_PIPELINES)
    def test_reference_output_has_output_shape(self, name):
        spec = registry.get(name)
        sizes = spec.concrete_sizes(chunk=4, vec=4)
        inputs = spec.make_inputs(sizes, seed=0)
        out = spec.reference_output(inputs)
        assert out.shape == (sizes["n"], sizes["m"])


class TestApplicability:
    def test_make_schedule_unknown_raises(self):
        with pytest.raises(KeyError, match="naive"):
            registry.make_schedule("no-such-schedule", {})

    @pytest.mark.parametrize("name", EXPECTED_PIPELINES)
    def test_applicability_matrix(self, name):
        reports = registry.applicable_schedules(name, chunk=4, vec=4, strip=2)
        applying = {s for s, r in reports.items() if r.applies}
        assert applying == EXPECTED_APPLICABILITY[name]
        # Everything lowers, even schedules whose optimization no-ops.
        assert all(r.lowers for r in reports.values())

    def test_applicability_is_cached(self):
        a = registry.applicable_schedules("box-blur", chunk=4, vec=4, strip=2)
        b = registry.applicable_schedules("box-blur", chunk=4, vec=4, strip=2)
        assert a is b

    def test_markers_counted_not_asserted(self):
        reports = registry.applicable_schedules("gaussian-blur", chunk=4, vec=4)
        assert reports["cbuf"].markers["CircularBuffer"] == 2
        assert reports["cbuf-rot"].markers["RotateValues"] == 2
        assert reports["naive"].markers["CircularBuffer"] == 0

    def test_strip_parallel_adds_a_split(self):
        reports = registry.applicable_schedules("unsharp-mask", chunk=4, vec=4)
        assert (
            reports["cbuf-par"].markers["Split"] > reports["cbuf"].markers["Split"]
        )


class TestStrategyCoverage:
    def test_acceptance_floor_three_pipelines_fully_covered(self):
        """Separation, circular buffering and strip parallelization must
        each apply to at least three registered pipelines."""
        fully = [
            name
            for name in registry.names()
            if all(
                registry.strategy_coverage(name)[key]
                for key in ("separation", "circular-buffer", "strip-parallel")
            )
        ]
        assert len(fully) >= 3

    def test_pyramid_gets_vectorize_but_not_buffering(self):
        cov = registry.strategy_coverage("pyramid")
        assert cov["vectorize"]
        assert not cov["circular-buffer"]
        assert not cov["rotation"]

    def test_sobel_magnitude_has_no_separation(self):
        cov = registry.strategy_coverage("sobel-magnitude")
        assert not cov["separation"]
        assert cov["circular-buffer"]


class TestZooBuilder:
    def test_builder_is_registered_with_the_engine(self):
        from repro.engine.pipeline import BUILDER_REGISTRY

        module, attr = BUILDER_REGISTRY["zoo"]
        assert (module, attr) == ("repro.pipelines.registry", "build_zoo_program")

    def test_build_zoo_program_produces_imp_program(self):
        from repro.codegen.ir import ImpProgram

        prog = registry.build_zoo_program("box-blur", "naive")
        assert isinstance(prog, ImpProgram)
        assert prog.name == "zoo_box_blur_naive"

    def test_build_zoo_program_unknown_pipeline(self):
        with pytest.raises(KeyError, match="box-blur"):
            registry.build_zoo_program("nope")

    def test_spec_is_frozen(self):
        spec = registry.get("box-blur")
        with pytest.raises(Exception):
            spec.name = "other"
        assert isinstance(spec, PipelineSpec)
