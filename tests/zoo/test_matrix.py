"""The differential test matrix: (pipeline x schedule x backend).

Every *applicable* (pipeline, schedule) pair from the registry is
compiled through the engine's ``"zoo"`` builder and executed on each
backend at the registry's smallest legal sizes; the output must match
the registry's NumPy reference.  Harris is exercised by the strategy
and engine suites at these exact settings, so the matrix covers the
five non-Harris pipelines.

The C-backend half is gated on ``requires_gcc`` (skipped, with a
reason, when the container has no host compiler).
"""

import numpy as np
import pytest

import repro
from repro.pipelines import registry

CHUNK, VEC, STRIP = 4, 4, 2

ZOO_PIPELINES = tuple(n for n in registry.names() if n != "harris")


def _matrix():
    cells = []
    for name in ZOO_PIPELINES:
        reports = registry.applicable_schedules(name, chunk=CHUNK, vec=VEC, strip=STRIP)
        for schedule, report in reports.items():
            if report.applies:
                cells.append((name, schedule))
    return cells


MATRIX = _matrix()


def _run_cell(pipeline: str, schedule: str, backend: str):
    spec = registry.get(pipeline)
    sizes = spec.concrete_sizes(CHUNK, VEC, STRIP)
    inputs = spec.make_inputs(sizes, seed=11)
    expected = spec.reference_output(inputs)
    compiled = repro.compile(
        "zoo",
        options={
            "pipeline": pipeline,
            "schedule": schedule,
            "chunk": CHUNK,
            "vec": VEC,
            "strip": STRIP,
        },
        backend=backend,
        sizes=sizes,
    )
    out = compiled.run(**inputs).reshape(expected.shape)
    np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)


class TestDifferentialMatrix:
    def test_matrix_covers_every_pipeline(self):
        assert {p for p, _ in MATRIX} == set(ZOO_PIPELINES)
        # The matrix is applicability-driven: pyramid contributes only
        # its naive cell, fully-covered pipelines all five.
        assert ("pyramid", "naive") in MATRIX
        assert ("gaussian-blur", "cbuf-rot-par") in MATRIX
        assert ("sobel-magnitude", "cbuf-rot") not in MATRIX

    @pytest.mark.parametrize("pipeline,schedule", MATRIX)
    def test_python_backend_matches_reference(self, pipeline, schedule):
        _run_cell(pipeline, schedule, "python")

    @pytest.mark.requires_gcc
    @pytest.mark.parametrize("pipeline,schedule", MATRIX)
    def test_c_backend_matches_reference(self, pipeline, schedule):
        _run_cell(pipeline, schedule, "c")


class TestParameterOverrides:
    def test_params_flow_through_the_engine(self):
        """Builder options carry pipeline parameters: amount=0 turns
        unsharp masking into the grayscale identity."""
        spec = registry.get("unsharp-mask")
        sizes = spec.concrete_sizes()
        inputs = spec.make_inputs(sizes, seed=2)
        expected = spec.reference_output(inputs, amount=0.0)
        out = repro.compile(
            "zoo",
            options={"pipeline": "unsharp-mask", "schedule": "naive", "amount": 0.0},
            sizes=sizes,
        ).run(**inputs)
        np.testing.assert_allclose(
            out.reshape(expected.shape), expected, rtol=1e-3, atol=1e-4
        )

    def test_distinct_params_get_distinct_cache_keys(self):
        """Options are part of the content address: the same builder with
        different parameters must land on different cache entries."""
        from repro.engine.pipeline import Engine
        from repro.engine.request import CompileRequest

        eng = Engine(cache_dir=None)
        a = eng.compile_request(
            CompileRequest(
                source="zoo",
                options={"pipeline": "unsharp-mask", "schedule": "naive", "amount": 0.5},
            )
        )
        b = eng.compile_request(
            CompileRequest(
                source="zoo",
                options={"pipeline": "unsharp-mask", "schedule": "naive", "amount": 0.0},
            )
        )
        assert a.key != b.key
