"""Metamorphic and PSNR properties of the pipeline zoo.

These tests check *mathematical identities* of the compiled pipelines —
properties an implementation cannot satisfy by accident — rather than
comparing against the same NumPy code that defined them:

* the chained 3x3 Gaussian stages equal one direct 5x5 convolution,
* Sobel magnitude of a constant image is exactly zero,
* unsharp masking with ``amount=0`` is the identity on the valid region,
* normalized kernels preserve constant (DC) images, and
* the pyramid's level geometry follows the ``4n+3 -> 2n+1 -> n`` chain.

All checks run the real compiled pipelines (python backend, naive
schedule) and gate on PSNR where float accumulation order may differ.
"""

import numpy as np
import pytest

import repro
from repro.image import psnr
from repro.image.reference import conv2d_valid, grayscale
from repro.pipelines import registry
from repro.pipelines.zoo import GAUSSIAN_KERNEL_2D

#: Matches the zoo bench harness' validation floor.
PSNR_FLOOR_DB = 80.0


def _run(pipeline: str, sizes, inputs, **params):
    spec = registry.get(pipeline)
    out = repro.compile(
        "zoo",
        options={"pipeline": pipeline, "schedule": "naive", **params},
        sizes=sizes,
    ).run(**inputs)
    return np.asarray(out).reshape(sizes["n"], sizes["m"]), spec


def _effective_5x5() -> np.ndarray:
    """Full 2-d convolution of the 3x3 binomial kernel with itself."""
    k = GAUSSIAN_KERNEL_2D
    out = np.zeros((5, 5), dtype=np.float64)
    for i in range(3):
        for j in range(3):
            out[i : i + 3, j : j + 3] += k[i, j] * k
    return out.astype(np.float32)


class TestGaussianSeparability:
    def test_two_stages_equal_direct_5x5(self):
        """The let-staged double 3x3 blur is one 5x5 Gaussian."""
        sizes = {"n": 16, "m": 16}
        spec = registry.get("gaussian-blur")
        inputs = spec.make_inputs(sizes, seed=7)
        out, _ = _run("gaussian-blur", sizes, inputs)
        direct = conv2d_valid(inputs[spec.input_name], _effective_5x5())
        assert psnr(direct, out) > PSNR_FLOOR_DB

    def test_effective_kernel_is_binomial(self):
        """Sanity on the identity itself: the composed kernel is the
        outer square of the binomial row [1,4,6,4,1]/16."""
        row = np.array([1.0, 4.0, 6.0, 4.0, 1.0]) / 16.0
        np.testing.assert_allclose(_effective_5x5(), np.outer(row, row), atol=1e-7)

    def test_dc_preservation(self):
        """The kernel is normalized: a constant image maps to itself."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("gaussian-blur")
        flat = np.full(spec.input_shape(sizes), 0.625, dtype=np.float32)
        out, _ = _run("gaussian-blur", sizes, {spec.input_name: flat})
        np.testing.assert_allclose(out, 0.625, rtol=1e-5, atol=1e-6)


class TestSobelProperties:
    def test_constant_image_has_zero_gradient(self):
        sizes = {"n": 8, "m": 8}
        spec = registry.get("sobel-magnitude")
        flat = np.full(spec.input_shape(sizes), 0.25, dtype=np.float32)
        out, _ = _run("sobel-magnitude", sizes, {spec.input_name: flat})
        np.testing.assert_allclose(out, 0.0, atol=1e-6)

    def test_magnitude_is_nonnegative(self):
        """ix^2 + iy^2 can never dip below zero, whatever the input."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("sobel-magnitude")
        inputs = spec.make_inputs(sizes, seed=13)
        out, _ = _run("sobel-magnitude", sizes, inputs)
        assert float(out.min()) >= 0.0


class TestUnsharpProperties:
    def test_amount_zero_is_grayscale_identity(self):
        """With amount=0 the sharpened image is the grayscale center."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("unsharp-mask")
        inputs = spec.make_inputs(sizes, seed=21)
        out, _ = _run("unsharp-mask", sizes, inputs, amount=0.0)
        gray_center = grayscale(inputs[spec.input_name])[1:-1, 1:-1]
        assert psnr(gray_center, out) > PSNR_FLOOR_DB

    def test_amount_scales_the_highpass_linearly(self):
        """sharp(a) - gray = a * (gray - blur): doubling the amount
        doubles the correction term."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("unsharp-mask")
        inputs = spec.make_inputs(sizes, seed=22)
        base, _ = _run("unsharp-mask", sizes, inputs, amount=0.0)
        one, _ = _run("unsharp-mask", sizes, inputs, amount=0.5)
        two, _ = _run("unsharp-mask", sizes, inputs, amount=1.0)
        np.testing.assert_allclose(two - base, 2.0 * (one - base), rtol=1e-4, atol=1e-5)


class TestBoxBlurProperties:
    def test_dc_preservation(self):
        sizes = {"n": 8, "m": 8}
        spec = registry.get("box-blur")
        flat = np.full(spec.input_shape(sizes), 1.5, dtype=np.float32)
        out, _ = _run("box-blur", sizes, {spec.input_name: flat})
        np.testing.assert_allclose(out, 1.5, rtol=1e-5, atol=1e-6)

    def test_mean_bounds(self):
        """A neighborhood mean stays inside the input's value range."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("box-blur")
        inputs = spec.make_inputs(sizes, seed=3)
        out, _ = _run("box-blur", sizes, inputs)
        arr = inputs[spec.input_name]
        assert float(out.min()) >= float(arr.min()) - 1e-5
        assert float(out.max()) <= float(arr.max()) + 1e-5


class TestPyramidProperties:
    def test_level_geometry(self):
        """(4n+3, 4m+3) input collapses through (2n+1, 2m+1) to (n, m)."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("pyramid")
        assert tuple(spec.input_shape(sizes)) == (35, 35)
        inputs = spec.make_inputs(sizes, seed=1)
        out, _ = _run("pyramid", sizes, inputs)
        assert out.shape == (8, 8)
        level1 = conv2d_valid(inputs[spec.input_name], GAUSSIAN_KERNEL_2D)[::2, ::2]
        assert level1.shape == (17, 17)

    def test_dc_preservation_through_both_levels(self):
        """The normalized Gaussian preserves constants through both
        decimating levels."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("pyramid")
        flat = np.full(spec.input_shape(sizes), 0.375, dtype=np.float32)
        out, _ = _run("pyramid", sizes, {spec.input_name: flat})
        np.testing.assert_allclose(out, 0.375, rtol=1e-5, atol=1e-6)

    def test_downsample_commutes_with_reference_decimation(self):
        """The fused strided stencil equals blur-then-decimate."""
        sizes = {"n": 8, "m": 8}
        spec = registry.get("pyramid")
        inputs = spec.make_inputs(sizes, seed=17)
        out, _ = _run("pyramid", sizes, inputs)
        img = inputs[spec.input_name]
        lvl1 = conv2d_valid(img, GAUSSIAN_KERNEL_2D)[::2, ::2]
        lvl2 = conv2d_valid(lvl1, GAUSSIAN_KERNEL_2D)[::2, ::2]
        assert psnr(lvl2, out) > PSNR_FLOOR_DB
