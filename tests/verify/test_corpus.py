"""Replay every committed corpus case under ``tests/corpus/``.

Each case is a shrunk fuzzing failure (or a hand-promoted regression
check) serialized by :mod:`repro.verify.shrink`.  ``expect: pass`` cases
must pass; ``expect: xfail`` cases document known, linked bugs and must
still *reproduce* — when one stops failing, the bug is fixed and the
case should be promoted to ``expect: pass`` (see docs/verify.md).
"""

from pathlib import Path

import pytest

from repro.engine.hashing import structural_hash
from repro.verify.fuzz import replay_case
from repro.verify.serialize import load_case

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
CASES = sorted(CORPUS_DIR.glob("*.json"))


def _case_id(path: Path) -> str:
    return path.stem


def test_corpus_directory_is_populated():
    assert CASES, f"no corpus cases under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CASES, ids=_case_id)
def test_replay_corpus_case(path):
    case = load_case(path)
    # Deserialization must reproduce the recorded program identity.
    assert structural_hash(case["expr"]) == case["program_hash"]
    failure = replay_case(case)
    if case["expect"] == "xfail":
        assert failure is not None, (
            f"{path.name}: known bug no longer reproduces — promote this "
            f"case to expect=pass (reason was: {case['reason']})"
        )
    else:
        assert failure is None, f"{path.name}: {failure}"
