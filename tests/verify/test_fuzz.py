"""Fuzz-loop behavior: determinism, metrics, failure handling, replay."""

import json

import pytest

from repro.verify.fuzz import FuzzConfig, case_seed, record_throughput, run_fuzz


class TestCampaign:
    def test_small_campaign_is_clean_and_counts_metrics(self, fresh_metrics_registry):
        report = run_fuzz(FuzzConfig(seed=0, iterations=6, use_c=False))
        assert report.cases == 6
        assert report.failures == []
        assert report.discard_rate <= 0.10
        snap = fresh_metrics_registry.snapshot()
        assert snap["counters"]["verify.cases"] == 6.0
        assert "verify.cases_per_sec" in snap["gauges"]

    def test_campaign_is_deterministic(self):
        a = run_fuzz(FuzzConfig(seed=9, iterations=4, use_c=False))
        b = run_fuzz(FuzzConfig(seed=9, iterations=4, use_c=False))
        assert a.cases == b.cases
        assert a.failures == b.failures

    def test_time_budget_stops_early(self):
        report = run_fuzz(
            FuzzConfig(seed=0, iterations=10_000, time_budget=1.0, use_c=False)
        )
        assert report.cases < 10_000

    def test_case_seed_is_stable(self):
        assert case_seed(0, 0) == case_seed(0, 0)
        assert case_seed(0, 1) != case_seed(1, 0)


class TestFailurePath:
    def test_injected_failure_is_shrunk_and_serialized(self, tmp_path, monkeypatch):
        import repro.verify.fuzz as fuzz_mod

        def lying_check(expr, rules, type_env, inputs, rtol=1e-5, atol=1e-6):
            return {"kind": "value", "index": 0, "a": 0.0, "b": 1.0}

        monkeypatch.setattr(fuzz_mod, "metamorphic_check", lying_check)
        report = run_fuzz(
            FuzzConfig(
                seed=2, iterations=1, use_c=False, corpus_dir=str(tmp_path)
            )
        )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["kind"] == "metamorphic"
        path = tmp_path / f"case_metamorphic_{failure['seed']}.json"
        assert path.is_file()
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.verify.case/v1"
        assert doc["program_hash"] == failure["program_hash"]


class TestThroughputLedger:
    def test_record_throughput_appends_ms_per_case_cell(self, tmp_path):
        from repro.bench.regress import load_trajectory

        report = run_fuzz(FuzzConfig(seed=1, iterations=3, use_c=False))
        path = tmp_path / "traj.json"
        record_throughput(path, report)
        doc = load_trajectory(path)
        cells = doc["samples"][-1]["cells"]
        assert "verify|fuzz|ms_per_case" in cells
        assert cells["verify|fuzz|ms_per_case"] > 0
