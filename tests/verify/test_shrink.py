"""Shrinker: stage dropping, rule bisection, corpus serialization."""

from repro.engine.hashing import structural_hash
from repro.rise.expr import Slide
from repro.rise.traverse import subterms
from repro.rise.typecheck import infer_types
from repro.verify.gen import generate_program
from repro.verify.serialize import load_case, save_case
from repro.verify.shrink import build_corpus_case, reduced_program, shrink_failure


def _program_with_slide(min_stages=3):
    for seed in range(200):
        gp = generate_program(seed)
        if len(gp.stages) >= min_stages and any(
            n.startswith("slide") for n in gp.stage_names
        ):
            return gp
    raise AssertionError("no suitable program found")


class TestShrink:
    def test_stage_and_rule_minimization(self):
        gp = _program_with_slide()

        def still_fails(expr, rules):
            has_slide = any(isinstance(n, Slide) for n in subterms(expr))
            return has_slide and "culprit" in rules

        rules = ["noiseA", "culprit", "noiseB", "noiseC", "noiseD"]
        res = shrink_failure(gp, rules, still_fails)
        assert res.rules == ["culprit"]
        kept_names = [gp.stages[i].name for i in res.kept_stages]
        assert len(kept_names) < len(gp.stages)
        assert any(isinstance(n, Slide) for n in subterms(res.expr))
        assert res.steps > 0

    def test_shrunk_expr_still_typechecks(self):
        gp = _program_with_slide()
        res = shrink_failure(gp, [], lambda e, r: True)
        infer_types(res.expr, gp.type_env, strict=True)
        reduced = reduced_program(gp, res)
        assert reduced.expr is res.expr
        assert len(reduced.stages) == len(res.kept_stages)

    def test_shrink_is_bounded(self):
        gp = _program_with_slide()
        res = shrink_failure(gp, ["r"] * 50, lambda e, r: True, max_steps=10)
        assert res.steps <= 12  # stage pass + a final rule pass round


class TestCorpusCase:
    def test_round_trip_preserves_hash_and_metadata(self, tmp_path):
        gp = _program_with_slide()
        res = shrink_failure(gp, ["useMapSeq"], lambda e, r: True)
        case = build_corpus_case(
            gp, res, "metamorphic", report={"kind": "value"}, expect="pass"
        )
        path = save_case(tmp_path / "case.json", case)
        back = load_case(path)
        assert structural_hash(back["expr"]) == case["program_hash"]
        assert back["kind"] == "metamorphic"
        assert back["seed"] == gp.seed
        assert back["sizes"] == gp.sizes
        assert set(back["inputs"]) == set(gp.input_specs)
