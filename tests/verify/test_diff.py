"""Differential check: backends agree with the interpreter; cache is hit."""

import numpy as np
import pytest

from repro.verify.diff import differential_check
from repro.verify.fuzz import case_seed
from repro.verify.gen import generate_program


class TestPythonBackend:
    @pytest.mark.parametrize("index", range(12))
    def test_interpreter_matches_python_executor(self, index, fresh_engine):
        gp = generate_program(case_seed(77, index))
        res = differential_check(gp, engine=fresh_engine, use_c=False)
        assert res.ok, [f.to_dict() for f in res.failures]
        assert "python" in res.compared or res.skipped

    def test_cache_is_exercised(self, fresh_engine, fresh_metrics_registry):
        gp = generate_program(3)
        res = differential_check(gp, engine=fresh_engine, use_c=False)
        assert res.ok
        snapshot = fresh_metrics_registry.snapshot()
        hits = [k for k in snapshot["counters"] if k.startswith("engine.cache.hits")]
        assert hits, snapshot["counters"]


class TestCBackend:
    @pytest.mark.requires_gcc
    @pytest.mark.parametrize("index", range(6))
    def test_interpreter_matches_c_backend(self, index, fresh_engine):
        gp = generate_program(case_seed(99, index))
        res = differential_check(gp, engine=fresh_engine, use_c=True)
        assert res.ok, [f.to_dict() for f in res.failures]


class TestFailureDetection:
    def test_wrong_reference_is_caught(self, fresh_engine, monkeypatch):
        """If the interpreter reference were wrong, the check must flag a
        mismatch — the comparison cannot silently pass everything."""
        import repro.verify.diff as diff_mod

        gp = generate_program(5)
        real = diff_mod._interpret(gp, gp.make_inputs())
        monkeypatch.setattr(
            diff_mod, "_interpret", lambda *_a, **_k: real + np.float32(1.0)
        )
        res = differential_check(gp, engine=fresh_engine, use_c=False)
        assert not res.ok
        assert res.failures[0].kind == "mismatch"
