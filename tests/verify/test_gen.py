"""Generator guarantees: well-typedness, determinism, discard budget."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.rise.typecheck import infer_types
from repro.rise.types import ArrayType, PairType, ScalarType, VectorType
from repro.verify.gen import GenConfig, generate_program

SEEDS = list(range(60))


class TestWellTyped:
    def test_every_generated_program_typechecks(self):
        for seed in SEEDS:
            gp = generate_program(seed)
            typing = infer_types(gp.expr, gp.type_env, strict=True)
            assert typing.root_type == gp.out_type

    def test_discard_rate_stays_within_budget(self):
        candidates = discards = 0
        for seed in SEEDS:
            gp = generate_program(seed)
            candidates += gp.candidates
            discards += gp.discards
        assert candidates > 0
        # Acceptance criterion: no silent retry loop discarding >10%.
        assert discards / candidates <= 0.10

    def test_outputs_are_lowerable_types(self):
        # Finalization must strip pair/vector elements from the output.
        def leaf_ok(t):
            while isinstance(t, ArrayType):
                t = t.elem
            return isinstance(t, ScalarType)

        for seed in SEEDS:
            gp = generate_program(seed)
            assert leaf_ok(gp.out_type), (seed, gp.out_type)
            assert not isinstance(gp.out_type, (PairType, VectorType))


class TestDeterminism:
    def test_same_seed_same_hash_in_process(self):
        for seed in (0, 7, 23):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.structural_hash() == b.structural_hash()
            assert a.stage_names == b.stage_names
            assert a.input_specs == b.input_specs

    def test_different_seeds_differ_somewhere(self):
        hashes = {generate_program(seed).structural_hash() for seed in SEEDS}
        assert len(hashes) > len(SEEDS) // 2

    def test_inputs_are_deterministic(self):
        gp = generate_program(11)
        a, b = gp.make_inputs(), gp.make_inputs()
        for name in a:
            assert (a[name] == b[name]).all()

    def test_same_seed_same_hash_across_processes(self):
        """Same seed => identical program hash in a fresh interpreter.

        Fresh-name counters are process-global, but the structural hash
        is alpha-invariant, so the hash must not depend on process
        history (the corpus-replay determinism criterion).
        """
        seeds = [0, 5, 17, 41]
        expected = {s: generate_program(s).structural_hash() for s in seeds}
        script = (
            "import json, sys\n"
            "from repro.verify.gen import generate_program\n"
            "seeds = json.loads(sys.argv[1])\n"
            "print(json.dumps({str(s): generate_program(s).structural_hash()"
            " for s in seeds}))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(seeds)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        theirs = json.loads(out.stdout)
        assert {int(k): v for k, v in theirs.items()} == expected


class TestConfig:
    def test_stage_count_respects_config(self):
        cfg = GenConfig(min_stages=1, max_stages=2, allow_vectors=False)
        for seed in range(20):
            gp = generate_program(seed, cfg)
            # finalization may append cleanup stages beyond max_stages
            assert len(gp.stages) >= 1
            assert not any("Vector" in n or n == "asScalar" for n in gp.stage_names)

    def test_symbolic_sizes_carry_bindings(self):
        saw_symbolic = False
        for seed in range(40):
            gp = generate_program(seed)
            if gp.sizes:
                saw_symbolic = True
                free = set()
                for t in gp.type_env.values():
                    free |= t.free_nat_vars()
                assert free == set(gp.sizes)
        assert saw_symbolic
