"""Metamorphic oracle: hardened comparison + admissibility-filtered rules."""

import random

import numpy as np
import pytest

from repro.rise.dsl import fun, lit, map_, split
from repro.rise.expr import Identifier
from repro.rise.types import array, f32
from repro.verify.fuzz import case_seed
from repro.verify.gen import generate_program
from repro.verify.oracle import (
    RULE_POOL,
    apply_rule_sequence,
    equivalence_report,
    flatten_value,
    metamorphic_check,
    sample_rule_names,
    values_close,
)


class TestEquivalenceReport:
    def test_equal_values_pass(self):
        assert equivalence_report([1.0, 2.0], [1.0, 2.0]) is None
        assert values_close((1.0, [2.0, 3.0]), (1.0, [2.0, 3.0]))

    def test_shape_mismatch_is_reported(self):
        report = equivalence_report([1.0, 2.0], [1.0])
        assert report["kind"] == "shape"

    def test_value_mismatch_is_reported_with_location(self):
        report = equivalence_report([1.0, 2.0, 3.0], [1.0, 9.0, 3.0])
        assert report["kind"] == "value"
        assert report["index"] == 1
        assert report["mismatched"] == 1

    def test_non_finite_values_fail_even_when_both_nan(self):
        report = equivalence_report([float("nan")], [float("nan")])
        assert report["kind"] == "non-finite"
        report = equivalence_report([1.0, float("inf")], [1.0, float("inf")])
        assert report["kind"] == "non-finite"

    def test_flatten_handles_nested_values(self):
        assert flatten_value([(np.float32(1.0), 2.0), [3.0]]) == [1.0, 2.0, 3.0]


class TestRulePool:
    def test_pool_is_nonempty_and_named(self):
        assert len(RULE_POOL) >= 25
        for name, strat in RULE_POOL.items():
            assert callable(strat), name

    def test_sampling_is_deterministic(self):
        a = sample_rule_names(random.Random(5), 6)
        b = sample_rule_names(random.Random(5), 6)
        assert a == b
        assert all(name in RULE_POOL for name in a)


class TestAdmissibility:
    def test_inadmissible_rewrite_is_reverted(self):
        # splitJoin(4) on a 6-element map violates divisibility: the
        # rewrite fires but must be reverted as inadmissible.
        xs = Identifier("xs")
        env = {"xs": array(6, f32)}
        expr = map_(fun(lambda x: x + lit(1.0)), xs)
        res = apply_rule_sequence(expr, ["splitJoin(4)"], env)
        assert res.inadmissible == ["splitJoin(4)"]
        assert res.expr is expr

    def test_admissible_rewrite_is_applied(self):
        xs = Identifier("xs")
        env = {"xs": array(8, f32)}
        expr = map_(fun(lambda x: x + lit(1.0)), xs)
        res = apply_rule_sequence(expr, ["splitJoin(4)", "useMapSeq"], env)
        assert res.applied == ["splitJoin(4)", "useMapSeq"]

    def test_unmatched_rule_is_skipped(self):
        xs = Identifier("xs")
        env = {"xs": array(8, f32)}
        expr = map_(fun(lambda x: x + lit(1.0)), xs)
        res = apply_rule_sequence(expr, ["transposeAroundMapMap"], env)
        assert res.skipped == ["transposeAroundMapMap"]


class TestMetamorphicProperty:
    @pytest.mark.parametrize("index", range(25))
    def test_random_rule_sequences_preserve_semantics(self, index):
        seed = case_seed(1234, index)
        gp = generate_program(seed)
        rng = random.Random(seed ^ 0x5EED)
        rules = sample_rule_names(rng, 5)
        failure = metamorphic_check(
            gp.expr, rules, gp.type_env, gp.make_inputs()
        )
        assert failure is None, failure
