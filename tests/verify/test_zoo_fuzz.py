"""Registry-seeded fuzzing: zoo pipelines as differential-oracle seeds.

``zoo_seed_program`` turns a registered pipeline into the same
``GeneratedProgram`` shape the random generator produces, so the
fuzzer's differential and metamorphic oracles — and the shrinker and
corpus serializer behind them — run unchanged on real pipelines.
"""

import numpy as np
import pytest

from repro.engine.hashing import structural_hash
from repro.pipelines import registry
from repro.verify import zoo_seed_program
from repro.verify.fuzz import FuzzConfig, run_fuzz


class TestZooSeedProgram:
    def test_deterministic_per_seed(self):
        a = zoo_seed_program(41)
        b = zoo_seed_program(41)
        assert structural_hash(a.expr) == structural_hash(b.expr)
        assert a.sizes == b.sizes
        assert a.input_specs == b.input_specs

    def test_seed_varies_the_pick(self):
        """Across many seeds the sampler must reach several pipelines."""
        picked = {
            structural_hash(zoo_seed_program(s).expr) for s in range(12)
        }
        assert len(picked) >= 3

    def test_restricting_pipelines(self):
        gp = zoo_seed_program(7, ("box-blur",))
        spec = registry.get("box-blur")
        assert gp.sizes == spec.concrete_sizes()
        assert set(gp.input_specs) == {spec.input_name}

    def test_inputs_match_the_registry_shape(self):
        gp = zoo_seed_program(3, ("gaussian-blur",))
        spec = registry.get("gaussian-blur")
        inputs = gp.make_inputs()
        arr = inputs[spec.input_name]
        assert arr.shape == spec.input_shape(gp.sizes)
        assert arr.dtype == np.float32

    def test_program_typechecks_strict(self):
        gp = zoo_seed_program(5, ("sobel-magnitude",))
        assert gp.out_type is not None
        assert gp.stages == ()


class TestZooFuzzCampaign:
    def test_interleaved_campaign_is_clean(self):
        """Every other case seeds from the registry; all oracles pass."""
        report = run_fuzz(
            FuzzConfig(
                seed=9,
                iterations=4,
                zoo_every=2,
                zoo_pipelines=("box-blur", "gaussian-blur"),
            )
        )
        assert report.cases == 4
        assert report.zoo_cases == 2
        assert report.failures == []

    def test_zoo_every_zero_disables_sampling(self):
        report = run_fuzz(FuzzConfig(seed=9, iterations=2, zoo_every=0))
        assert report.zoo_cases == 0

    def test_zoo_cases_survive_serialization(self):
        report = run_fuzz(
            FuzzConfig(seed=1, iterations=2, zoo_every=1, zoo_pipelines=("box-blur",))
        )
        doc = report.to_dict()
        assert doc["zoo_cases"] == 2
        assert doc["failure_count"] == 0
