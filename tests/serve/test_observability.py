"""End-to-end request observability through the serving stack.

The regression this file pins down: ``loop.run_in_executor`` does *not*
propagate context variables, so without the per-ticket
``contextvars.copy_context()`` capture the server's worker threads would
record their engine spans into the void — a traced serve request would
show an empty ``serve.request`` span with no engine children.  The tests
assert the full span tree (server -> engine -> backend), the request_id
stamped on every span and event, and the deadline-salvage accounting.
"""

import asyncio
import threading

import pytest

from repro.engine import CompileRequest, Engine
from repro.observe import observing
from repro.observe.metrics import registry as metrics_registry
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq
from repro.serve import DeadlineExceeded, Server

xs = Identifier("xs")
ENV = {"xs": array("n", f32)}


def _request(factor: float = 2.0) -> CompileRequest:
    return CompileRequest(
        source=map_seq(fun(lambda v: v * lit(factor)), xs),
        type_env=ENV,
        name=f"scale{int(factor)}",
        sizes={"n": 6},
    )


class _SlowEngine(Engine):
    """An engine whose builds block until the test releases them."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()

    def _build_program(self, *args, **kwargs):
        assert self.release.wait(timeout=30)
        return super()._build_program(*args, **kwargs)


def _spans_by_name(observer):
    index = {}
    for s in observer.flat_spans():
        index.setdefault(s.name, []).append(s)
    return index


class TestServeSpanTree:
    def test_traced_serve_request_contains_engine_children(
        self, fresh_metrics_registry, fresh_event_log
    ):
        request = _request()

        async def main():
            async with Server(Engine()) as server:
                await server.submit(request)

        # the observer is active on the event-loop thread; the ticket's
        # copied context must carry it into the executor worker
        with observing() as obs:
            asyncio.run(main())

        spans = _spans_by_name(obs)
        (serve_span,) = spans["serve.request"]
        (compile_span,) = spans["engine.compile"]
        (lower_span,) = spans["backend.lower"]

        # one coherent tree: serve.request -> engine.compile -> backend.lower
        assert compile_span.parent_id == serve_span.span_id
        assert lower_span.parent_id == compile_span.span_id
        assert compile_span in serve_span.children
        assert compile_span.meta["cache"] == "miss"

        # every span in the tree carries the submitting request's id
        for s in obs.flat_spans():
            assert s.request_id == request.request_id, s.name

    def test_serve_events_share_the_request_id(
        self, fresh_metrics_registry, fresh_event_log
    ):
        request = _request(3.0)

        async def main():
            async with Server(Engine()) as server:
                await server.submit(request)

        asyncio.run(main())

        events = {r["event"]: r for r in fresh_event_log.events()}
        for name in (
            "serve.admit",
            "serve.dequeue",
            "engine.build.start",
            "engine.build.done",
            "engine.compile.done",
            "serve.complete",
        ):
            assert name in events, f"missing event {name}"
            assert events[name]["request_id"] == request.request_id, name
        assert events["serve.complete"]["attrs"]["outcome"] == "ok"
        assert events["serve.complete"]["attrs"]["cache"] == "miss"

    def test_untraced_serving_still_emits_events(
        self, fresh_metrics_registry, fresh_event_log
    ):
        # no observer at all: spans are no-ops, the event log still records
        request = _request(5.0)

        async def main():
            async with Server(Engine()) as server:
                await server.submit(request)

        asyncio.run(main())
        names = [r["event"] for r in fresh_event_log.events()]
        assert "serve.admit" in names
        assert "serve.complete" in names


class TestRejectionEvents:
    def test_rejection_emits_a_failure_event(
        self, fresh_metrics_registry, fresh_event_log
    ):
        engine = _SlowEngine()

        async def main():
            async with Server(engine, max_queue=1, workers=1) as server:
                first = asyncio.ensure_future(server.submit(_request(2.0)))
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if server._queue.qsize() == 0:
                        break
                second = asyncio.ensure_future(server.submit(_request(3.0)))
                await asyncio.sleep(0.01)
                from repro.serve import ServerBusy

                with pytest.raises(ServerBusy):
                    await server.submit(_request(5.0))
                engine.release.set()
                await asyncio.gather(first, second)

        asyncio.run(main())
        rejects = [
            r for r in fresh_event_log.events() if r["event"] == "serve.reject"
        ]
        assert len(rejects) == 1
        assert rejects[0]["attrs"]["outcome"] == "rejected"
        assert rejects[0] in fresh_event_log.failures()


class TestDeadlineSalvage:
    def test_salvaged_build_is_counted_and_logged(
        self, fresh_metrics_registry, fresh_event_log
    ):
        engine = _SlowEngine()
        request = _request()

        async def main():
            async with Server(engine, workers=1) as server:
                with pytest.raises(DeadlineExceeded):
                    await server.submit(request, deadline_s=0.05)
                # the shielded build keeps running; release it and wait
                # for the worker to finish the abandoned ticket
                engine.release.set()
                for _ in range(300):
                    await asyncio.sleep(0.01)
                    if server.stats.salvaged:
                        break
                return server.stats

        stats = asyncio.run(main())
        assert stats.deadline_exceeded == 1
        assert stats.salvaged == 1
        assert stats.to_dict()["salvaged"] == 1

        counters = metrics_registry().snapshot()["counters"]
        assert counters.get("serve.deadline.salvaged") == 1

        events = {r["event"]: r for r in fresh_event_log.events()}
        assert events["serve.deadline"]["attrs"]["outcome"] == "deadline"
        salvage = events["serve.deadline.salvaged"]
        assert salvage["attrs"]["outcome"] == "salvaged"
        assert salvage["request_id"] == request.request_id
        assert "serve.complete" not in events  # salvage replaces completion

    def test_fast_completion_never_salvages(
        self, fresh_metrics_registry, fresh_event_log
    ):
        async def main():
            async with Server(Engine()) as server:
                await server.submit(_request(), deadline_s=30.0)
                return server.stats

        stats = asyncio.run(main())
        assert stats.salvaged == 0
        assert stats.deadline_exceeded == 0
        names = [r["event"] for r in fresh_event_log.events()]
        assert "serve.deadline.salvaged" not in names
