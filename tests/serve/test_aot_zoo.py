"""AOT prebuild over the pipeline zoo: grid shape, filtering, warm starts.

``zoo_kernel_requests`` is the registry-wide companion of
``harris_kernel_requests``: every registered pipeline under every
*applicable* schedule, addressed as plain-JSON ``"zoo"`` builder
requests so a serving process can reconstruct them without importing
pipeline code.
"""

import pytest

from repro.pipelines import registry
from repro.serve import prebuild, zoo_kernel_requests

#: Applying (pipeline, schedule) pairs at the AOT defaults — the sum of
#: the registry's applicability matrix rows: 5+5+3+5+5+1.
EXPECTED_APPLICABLE = 24


class TestZooKernelGrid:
    def test_applicable_grid_size(self):
        reqs = zoo_kernel_requests(backends=("python",))
        assert len(reqs) == EXPECTED_APPLICABLE

    def test_kernel_naming(self):
        names = [name for name, _ in zoo_kernel_requests(backends=("python",))]
        assert "zoo-gaussian-blur-cbuf-rot-par@python" in names
        assert "zoo-pyramid-naive@python" in names
        assert all(name.startswith("zoo-") for name in names)

    def test_applicability_filter_drops_no_op_schedules(self):
        names = [name for name, _ in zoo_kernel_requests(backends=("python",))]
        # pyramid's strided slides admit no buffering schedule: prebuilding
        # one would publish a naive kernel under an optimized name.
        assert "zoo-pyramid-cbuf@python" not in names
        assert "zoo-sobel-magnitude-cbuf-rot@python" not in names

    def test_applicable_only_false_emits_the_full_product(self):
        reqs = zoo_kernel_requests(backends=("python",), applicable_only=False)
        assert len(reqs) == len(registry.names()) * len(registry.SCHEDULE_NAMES)

    def test_backends_multiply_the_grid(self):
        reqs = zoo_kernel_requests(backends=("python", "c"))
        assert len(reqs) == 2 * EXPECTED_APPLICABLE
        assert {req.backend for _, req in reqs} == {"python", "c"}

    def test_pipeline_and_schedule_overrides(self):
        reqs = zoo_kernel_requests(
            backends=("python",),
            pipelines=["box-blur"],
            schedules=["naive", "cbuf"],
        )
        assert [name for name, _ in reqs] == [
            "zoo-box-blur-naive@python",
            "zoo-box-blur-cbuf@python",
        ]

    def test_requests_are_plain_json_options(self):
        for _, req in zoo_kernel_requests(backends=("python",)):
            assert req.source == "zoo"
            assert req.strategy is None
            assert set(req.options) == {"pipeline", "schedule", "chunk", "vec", "strip"}


class TestZooPrebuild:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return tmp_path_factory.mktemp("zoo-aot") / "store"

    @pytest.fixture(scope="class")
    def tiny_requests(self):
        return zoo_kernel_requests(
            backends=("python",), pipelines=["box-blur"], schedules=["naive", "cbuf"]
        )

    def test_cold_prebuild_builds_the_zoo_kernels(self, store, tiny_requests):
        manifest = prebuild(store, requests=tiny_requests)
        assert [k["kernel"] for k in manifest["kernels"]] == [
            "zoo-box-blur-naive@python",
            "zoo-box-blur-cbuf@python",
        ]
        assert all(k["cache"] == "miss" for k in manifest["kernels"])
        # Distinct schedules must land on distinct content addresses.
        keys = {k["key"] for k in manifest["kernels"]}
        assert len(keys) == len(manifest["kernels"])

    def test_warm_prebuild_performs_zero_builds(self, store, tiny_requests):
        second = prebuild(store, requests=tiny_requests)
        assert all(k["cache"] != "miss" for k in second["kernels"])
