"""AOT prebuild: the kernel grid, manifest, and warm-start idempotence."""

import json

import numpy as np
import pytest

from repro.engine import Engine
from repro.image import reference, synthetic_rgb
from repro.serve import (
    AOT_MANIFEST,
    harris_kernel_requests,
    load_manifest,
    prebuild,
)
from repro.serve.aot import MANIFEST_SCHEMA


class TestKernelGrid:
    def test_five_schedules_per_backend(self):
        reqs = harris_kernel_requests(backends=("python",))
        names = [name for name, _ in reqs]
        assert len(reqs) == 5
        assert all(name.endswith("@python") for name in names)
        assert "harris-cbuf-rot-par@python" in names

    def test_backends_multiply_the_grid(self):
        reqs = harris_kernel_requests(backends=("python", "c"))
        assert len(reqs) == 10
        backends = {req.backend for _, req in reqs}
        assert backends == {"python", "c"}

    def test_requests_carry_distinct_keys(self, fresh_engine):
        keys = set()
        for _, req in harris_kernel_requests(backends=("python",)):
            keys.add(
                fresh_engine._key_for(
                    req.source, req.strategy, req.backend, req.type_env,
                    req.options, req.cflags, req.threads,
                )
            )
        assert len(keys) == 5


class TestPrebuild:
    def test_cold_prebuild_builds_everything(self, tmp_path):
        manifest = prebuild(tmp_path / "store")
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert len(manifest["kernels"]) == 5
        assert all(k["cache"] == "miss" for k in manifest["kernels"])
        assert (tmp_path / "store" / AOT_MANIFEST).is_file()

    def test_second_pass_performs_zero_builds(self, tmp_path):
        store = tmp_path / "store"
        first = prebuild(store)
        # a fresh engine, as a new install process would create
        second = prebuild(store)
        assert all(k["cache"] != "miss" for k in second["kernels"]), (
            "re-prebuild over a warm store must not rebuild"
        )
        assert [k["key"] for k in first["kernels"]] == [
            k["key"] for k in second["kernels"]
        ]

    def test_prebuilt_kernels_run_correctly(self, tmp_path):
        store = tmp_path / "store"
        prebuild(store)
        engine = Engine(cache_dir=store)
        img = synthetic_rgb(12, 16, seed=7)
        expected = reference.harris(img)
        for name, req in harris_kernel_requests(backends=("python",)):
            pipeline = engine.compile_request(req)
            assert pipeline.cache_status in ("hit-disk", "hit-memory"), name
            out = pipeline.run(sizes={"n": 8, "m": 12}, rgb=img)
            np.testing.assert_allclose(
                out.reshape(8, 12), expected, rtol=1e-3, atol=1e-4,
                err_msg=name,
            )


class TestManifest:
    def test_load_manifest_roundtrip(self, tmp_path):
        store = tmp_path / "store"
        written = prebuild(store)
        read = load_manifest(store)
        assert read["kernels"] == json.loads(json.dumps(written))["kernels"]

    def test_unknown_schema_rejected(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / AOT_MANIFEST).write_text(json.dumps({"schema": "bogus/v9"}))
        with pytest.raises(ValueError, match="unknown AOT manifest schema"):
            load_manifest(store)
