"""Server admission control: bounded queue, deadlines, error surfaces."""

import asyncio
import threading

import numpy as np
import pytest

from repro.engine import CompileRequest, Engine
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq
from repro.serve import DeadlineExceeded, Server, ServerBusy, ServerError

xs = Identifier("xs")
ENV = {"xs": array("n", f32)}


def _request(factor: float = 2.0) -> CompileRequest:
    return CompileRequest(
        source=map_seq(fun(lambda v: v * lit(factor)), xs),
        type_env=ENV,
        name=f"scale{int(factor)}",
        sizes={"n": 6},
    )


class _SlowEngine(Engine):
    """An engine whose builds block until the test releases them."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()

    def _build_program(self, *args, **kwargs):
        assert self.release.wait(timeout=30)
        return super()._build_program(*args, **kwargs)


class TestLifecycle:
    def test_submit_outside_context_is_an_error(self):
        server = Server(Engine())

        async def main():
            with pytest.raises(ServerError, match="not running"):
                await server.submit(_request())

        asyncio.run(main())

    def test_submit_rejects_non_requests(self):
        async def main():
            async with Server(Engine()) as server:
                with pytest.raises(TypeError, match="CompileRequest"):
                    await server.submit({"source": "harris-halide"})

        asyncio.run(main())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            Server(Engine(), max_queue=0)
        with pytest.raises(ValueError, match="workers"):
            Server(Engine(), workers=0)


class TestHappyPath:
    def test_submit_returns_a_runnable_pipeline(self):
        async def main():
            async with Server(Engine()) as server:
                pipeline = await server.submit(_request())
                return pipeline

        pipeline = asyncio.run(main())
        out = pipeline.run(xs=np.arange(6.0))
        np.testing.assert_allclose(out, np.arange(6.0) * 2)
        assert pipeline.cache_status == "miss"

    def test_duplicate_submissions_share_one_build(self):
        async def main():
            engine = Engine()
            async with Server(engine, workers=4) as server:
                pipelines = await asyncio.gather(
                    *(server.submit(_request()) for _ in range(6))
                )
                return engine, pipelines

        engine, pipelines = asyncio.run(main())
        assert engine.cache.stats.stores == 1
        assert {p.key for p in pipelines} == {pipelines[0].key}

    def test_stats_track_completions(self):
        async def main():
            async with Server(Engine()) as server:
                await server.submit(_request())
                return server.to_dict()

        doc = asyncio.run(main())
        assert doc["submitted"] == 1
        assert doc["completed"] == 1
        assert doc["rejected"] == 0


class TestAdmissionControl:
    def test_full_queue_rejects_with_server_busy(self):
        engine = _SlowEngine()

        async def main():
            async with Server(engine, max_queue=1, workers=1) as server:
                first = asyncio.ensure_future(server.submit(_request(2.0)))
                # let the single worker pick up the blocking build
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if server._queue.qsize() == 0:
                        break
                second = asyncio.ensure_future(server.submit(_request(3.0)))
                await asyncio.sleep(0.01)  # second occupies the one queue slot
                with pytest.raises(ServerBusy, match="queue full"):
                    await server.submit(_request(5.0))
                assert server.stats.rejected == 1
                engine.release.set()
                await asyncio.gather(first, second)

        asyncio.run(main())

    def test_deadline_exceeded_does_not_cancel_the_build(self):
        engine = _SlowEngine()

        async def main():
            async with Server(engine, workers=1) as server:
                with pytest.raises(DeadlineExceeded):
                    await server.submit(_request(), deadline_s=0.05)
                assert server.stats.deadline_exceeded == 1
                # the shielded build completes and warms the cache ...
                engine.release.set()
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if engine.cache.stats.stores:
                        break
                # ... so the retry is an immediate hit
                retry = await server.submit(_request(), deadline_s=5.0)
                return retry

        retry = asyncio.run(main())
        assert retry.cache_status in ("hit-memory", "hit-disk")

    def test_default_deadline_applies(self):
        engine = _SlowEngine()

        async def main():
            async with Server(
                engine, workers=1, default_deadline_s=0.05
            ) as server:
                with pytest.raises(DeadlineExceeded):
                    await server.submit(_request())
                engine.release.set()

        asyncio.run(main())

    def test_compile_errors_propagate_to_the_caller(self):
        async def main():
            async with Server(Engine()) as server:
                with pytest.raises(KeyError, match="no-such-builder"):
                    await server.submit(CompileRequest(source="no-such-builder"))
                assert server.stats.failed == 1

        asyncio.run(main())
