"""Loadtest harness: percentile math, cell naming, and an end-to-end smoke
run over a prebuilt store (small counts — the latency *numbers* are not
asserted, the structural invariants are)."""

import math

import pytest

from repro.serve import prebuild, run_loadtest
from repro.serve.loadtest import LoadtestResult, percentile, serve_cells


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.5) == 2.5
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(list(reversed(samples)), 0.5) == 2.5  # sorts first


class TestCells:
    def test_only_sampled_families_render(self):
        result = LoadtestResult(cold_jit_ms=[10.0, 12.0])
        cells = serve_cells(result)
        assert set(cells) == {"serve|p50|cold_jit_ms", "serve|p99|cold_jit_ms"}

    def test_cell_prefix_matches_the_regression_gate(self):
        from repro.bench.regress import SERVE_CELL_PREFIX

        result = LoadtestResult(aot_warm_run_ms=[1.0])
        assert all(c.startswith(SERVE_CELL_PREFIX) for c in serve_cells(result))


class TestCheck:
    def test_warm_build_is_a_violation(self):
        result = LoadtestResult(warm_cache_statuses={"miss": 2, "hit-disk": 6})
        assert any("cold" in p for p in result.check())

    def test_inverted_latencies_are_a_violation(self):
        result = LoadtestResult(
            cold_jit_ms=[1.0], aot_warm_run_ms=[5.0],
            warm_cache_statuses={"hit-disk": 1},
        )
        assert any("not below" in p for p in result.check())

    def test_healthy_run_is_clean(self):
        result = LoadtestResult(
            cold_jit_ms=[100.0], aot_warm_run_ms=[2.0],
            warm_cache_statuses={"hit-disk": 4, "hit-memory": 4},
        )
        assert result.check() == []


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("aot") / "store"
        prebuild(store)
        return run_loadtest(store, warm=6, cold=2, workers=2)

    def test_smoke_run_is_healthy(self, result):
        assert result.check() == []
        assert result.rejected == 0
        assert result.deadline_exceeded == 0

    def test_cells_cover_all_three_families(self, result):
        cells = result.cells()
        for family in ("cold_jit_ms", "warm_compile_ms", "aot_warm_run_ms"):
            assert f"serve|p99|{family}" in cells

    def test_warm_traffic_hit_the_prebuilt_store(self, result):
        assert result.warm_cache_statuses.get("miss", 0) == 0
        assert sum(result.warm_cache_statuses.values()) == 6

    def test_summary_is_json_ready(self, result):
        import json

        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["samples"]["cold_jit"] == 2
        assert doc["server"]["completed"] >= 8
