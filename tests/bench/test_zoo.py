"""The zoo bench grid: cell naming, applicability filtering, baselines.

The grid feeds ``zoo|<pipeline>|<schedule>|<machine>`` cells into the
``BENCH_trajectory.json`` ledger, where they are regression-gated like
every other deterministic cost-model cell — so these tests pin the cell
key format, the applicability filter (no cells for schedules that do
not structurally apply), and determinism across runs.
"""

import pytest

from repro.bench.zoo import (
    DEFAULT_PSNR_FLOOR_DB,
    ZOO_CELL_PREFIX,
    SmokeRow,
    ZooCell,
    format_smoke,
    format_zoo,
    zoo_cells,
    zoo_grid,
    zoo_smoke,
)
from repro.engine.pipeline import Engine
from repro.perf.machines import ALL_MACHINES
from repro.pipelines import registry


@pytest.fixture(scope="module")
def engine():
    return Engine(cache_dir=None)


@pytest.fixture(scope="module")
def one_machine():
    return ALL_MACHINES[0]


@pytest.fixture(scope="module")
def small_grid(engine, one_machine):
    """box-blur (fully covered) + pyramid (naive only) on one machine."""
    return zoo_grid(
        pipelines=["box-blur", "pyramid"], machines=[one_machine], engine=engine
    )


class TestGrid:
    def test_cell_key_format(self, small_grid, one_machine):
        cell = small_grid[0]
        assert cell.key == (
            f"zoo|{cell.pipeline}|{cell.schedule}|{one_machine.name}"
        )
        assert cell.key.startswith(ZOO_CELL_PREFIX)

    def test_applicability_filters_cells(self, small_grid):
        """pyramid contributes exactly its naive cell; box-blur all five
        schedules.  No cell may cost a schedule that silently no-opped."""
        by_pipeline = {}
        for c in small_grid:
            by_pipeline.setdefault(c.pipeline, set()).add(c.schedule)
        assert by_pipeline["pyramid"] == {"naive"}
        assert by_pipeline["box-blur"] == {
            "naive",
            "cbuf",
            "cbuf-rot",
            "cbuf-par",
            "cbuf-rot-par",
        }

    def test_runtimes_positive_and_finite(self, small_grid):
        for c in small_grid:
            assert 0.0 < c.runtime_ms < 1e6, c.key

    def test_buffering_beats_naive_on_box_blur(self, small_grid):
        """The cost model must preserve the paper's ordering: circular
        buffering avoids recomputing the producer stage."""
        ms = {c.schedule: c.runtime_ms for c in small_grid if c.pipeline == "box-blur"}
        assert ms["cbuf"] < ms["naive"]

    def test_harris_baselines_appear_in_the_grid(self, engine, one_machine):
        cells = zoo_grid(pipelines=["harris"], machines=[one_machine], engine=engine)
        labels = {c.schedule for c in cells}
        assert {"halide", "opencv", "lift"} <= labels
        assert "naive" in labels

    def test_cells_are_deterministic(self, engine, one_machine):
        a = zoo_cells(pipelines=["box-blur"], engine=engine)
        b = zoo_cells(pipelines=["box-blur"], engine=engine)
        assert a == b
        assert all(k.startswith(ZOO_CELL_PREFIX) for k in a)

    def test_grid_covers_all_machines_by_default(self, engine):
        cells = zoo_grid(pipelines=["pyramid"], engine=engine)
        assert {c.machine for c in cells} == {m.name for m in ALL_MACHINES}


class TestSmoke:
    def test_box_blur_python_validates(self, engine):
        rows = zoo_smoke(pipelines=["box-blur"], backends=["python"], engine=engine)
        assert len(rows) == 1
        row = rows[0]
        assert row.ok
        assert row.psnr_db > DEFAULT_PSNR_FLOOR_DB
        assert row.backend == "python"
        assert row.schedule == registry.DEFAULT_SCHEDULE

    def test_smoke_row_ok_is_the_floor_comparison(self):
        row = SmokeRow(
            pipeline="p",
            schedule="naive",
            backend="python",
            sizes={"n": 8, "m": 8},
            psnr_db=79.9,
            max_abs_err=1.0,
            psnr_floor_db=80.0,
        )
        assert not row.ok


class TestFormatting:
    def test_format_zoo_mentions_every_cell(self, small_grid):
        text = format_zoo(small_grid)
        assert "box-blur" in text and "pyramid" in text
        assert "cbuf-rot-par" in text

    def test_format_smoke_reports_psnr(self):
        rows = [
            SmokeRow(
                pipeline="box-blur",
                schedule="naive",
                backend="python",
                sizes={"n": 8, "m": 8},
                psnr_db=float("inf"),
                max_abs_err=0.0,
            )
        ]
        text = format_smoke(rows)
        assert "box-blur" in text
        assert "ok" in text.lower()


class TestCellWiring:
    def test_prefix_constant_matches_regress(self):
        from repro.bench.regress import ZOO_CELL_PREFIX as regress_prefix

        assert regress_prefix == ZOO_CELL_PREFIX

    def test_zoo_cell_key_property(self):
        from repro.perf.cost import CostReport

        cell = ZooCell(
            pipeline="gaussian-blur",
            schedule="cbuf",
            machine="A7",
            runtime_ms=1.0,
            report=None,
        )
        assert cell.key == "zoo|gaussian-blur|cbuf|A7"
        assert CostReport is not None
