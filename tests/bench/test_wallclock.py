"""Measured wall-clock benchmarking (the multicore counterpart of the
modeled fig. 8 grid): cell shape, trajectory merging, the informational
``wall|`` gate, and the 4-vs-1-thread speedup acceptance check."""

import os

import pytest

from repro.bench.harness import WallCell, format_wall, wallclock_grid
from repro.bench.regress import (
    WALL_CELL_PREFIX,
    collect_sample,
    compare_trajectory,
    new_trajectory,
)
from repro.engine.pipeline import Engine


@pytest.fixture(scope="module")
def wall_cells():
    """One tiny python-backend grid shared by the shape tests."""
    return wallclock_grid(
        thread_counts=(1, 2),
        k=1,
        height=36,
        width=36,
        chunk=4,
        backend="python",
        engine=Engine(cache_dir=None),
    )


class TestWallGrid:
    def test_one_cell_per_schedule_and_thread_count(self, wall_cells):
        keys = {c.key for c in wall_cells}
        assert keys == {
            "wall|rise-cbuf-rrot@1t|36x36",
            "wall|rise-cbuf-rrot@2t|36x36",
            "wall|rise-cbuf-rrot-par@1t|36x36",
            "wall|rise-cbuf-rrot-par@2t|36x36",
        }

    def test_min_of_k_and_positive(self, wall_cells):
        for cell in wall_cells:
            assert cell.runs_ms and len(cell.runs_ms) == 1
            assert cell.wall_ms == min(cell.runs_ms) > 0.0

    def test_key_carries_wall_prefix(self):
        cell = WallCell("s", "8x8", "python", 4, 1.0, [1.0])
        assert cell.key.startswith(WALL_CELL_PREFIX)
        assert cell.key == "wall|s@4t|8x8"

    def test_format_mentions_every_cell(self, wall_cells):
        text = format_wall(wall_cells)
        for cell in wall_cells:
            assert cell.schedule in text


class TestTrajectoryIntegration:
    def test_wall_cells_merge_into_sample(self, wall_cells):
        wall = {c.key: c.wall_ms for c in wall_cells}
        sample = collect_sample(chunk=32, vec=4, k=1, wall=wall)
        for key in wall:
            assert key in sample["cells"]
        # modeled cells still present alongside
        assert any(not k.startswith(WALL_CELL_PREFIX) for k in sample["cells"])

    def _trajectory_with_wall_regression(self):
        base = {"A53|small|Halide": 100.0, "wall|s@4t|img": 1.0}
        slow = {"A53|small|Halide": 100.0, "wall|s@4t|img": 10.0}
        sample = lambda cells: {
            "schema": 1,
            "timestamp": 0.0,
            "git_sha": "x",
            "k": 1,
            "environment": {},
            "cells": cells,
            "metrics": {},
        }
        trajectory = new_trajectory()
        trajectory["samples"] = [sample(base), sample(slow)]
        return trajectory

    def test_wall_cells_informational_by_default(self):
        regressions, info = compare_trajectory(self._trajectory_with_wall_regression())
        assert regressions == []
        assert info["gate_wall"] is False

    def test_gate_wall_flags_measured_regression(self):
        regressions, info = compare_trajectory(
            self._trajectory_with_wall_regression(), gate_wall=True
        )
        assert [r.cell for r in regressions] == ["wall|s@4t|img"]
        assert info["gate_wall"] is True


@pytest.mark.requires_gcc
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup check needs >= 4 CPU cores"
)
class TestSpeedupAcceptance:
    def test_parallel_schedule_speeds_up_at_four_threads(self):
        """Acceptance: >= 1.3x wall speedup for cbuf+rot+par at 4 vs 1
        threads with gcc + OpenMP (skipped on small/CI machines)."""
        from repro.exec.cbridge import openmp_available

        if not openmp_available():
            pytest.skip("toolchain lacks OpenMP")
        cells = wallclock_grid(
            thread_counts=(1, 4),
            k=3,
            height=516,
            width=516,
            chunk=4,
            backend="c",
            engine=Engine(cache_dir=None),
        )
        par = {c.threads: c.wall_ms for c in cells if c.schedule.endswith("par")}
        assert par[1] / par[4] >= 1.3
