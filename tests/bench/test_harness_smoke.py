"""Smoke tests for the experiment harness (full runs live in benchmarks/)."""

import pytest

from repro.bench import compile_all, padded_sizes
from repro.image import PAPER_IMAGE_LARGE, PAPER_IMAGE_SMALL


class TestHarness:
    def test_padded_sizes_alignment(self):
        sizes = padded_sizes(PAPER_IMAGE_SMALL, chunk=32, vec=4)
        assert sizes["n"] % 32 == 0
        assert sizes["m"] % 4 == 0
        assert sizes["n"] >= PAPER_IMAGE_SMALL.height - 4
        assert sizes["m"] >= PAPER_IMAGE_SMALL.width - 4

    def test_padding_is_small(self):
        for spec in (PAPER_IMAGE_SMALL, PAPER_IMAGE_LARGE):
            sizes = padded_sizes(spec)
            overhead = sizes["n"] * sizes["m"] / ((spec.height - 4) * (spec.width - 4))
            assert overhead < 1.03  # <3% extra work from rounding

    def test_compile_all_caches(self):
        a = compile_all()
        b = compile_all()
        assert a is b
        assert set(a) == {
            "OpenCV",
            "Lift",
            "Halide",
            "RISE (cbuf)",
            "RISE (cbuf+rot)",
        }

    def test_single_vs_multi_kernel(self):
        programs = compile_all()
        assert len(programs["Halide"].functions) == 1
        assert len(programs["RISE (cbuf)"].functions) == 1
        assert len(programs["Lift"].functions) > 1
        assert len(programs["OpenCV"].functions) > 1
