"""Benchmark regression tracking: trajectory ledger + compare tool."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.regress import (
    SAMPLE_SCHEMA,
    TRAJECTORY_SCHEMA,
    append_sample,
    compare_cells,
    compare_trajectory,
    format_regressions,
    load_trajectory,
    new_trajectory,
)

TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py"


def _sample(cells, sha="abc1234"):
    return {
        "schema": SAMPLE_SCHEMA,
        "timestamp": 0.0,
        "git_sha": sha,
        "k": 3,
        "environment": {"chunk": 32, "vec": 4},
        "cells": cells,
        "metrics": {},
    }


CELLS = {"A53|small|Halide": 100.0, "A53|small|RISE (cbuf)": 80.0}


class TestTrajectoryLedger:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        doc = append_sample(path, _sample(CELLS))
        assert doc["schema"] == TRAJECTORY_SCHEMA
        assert len(doc["samples"]) == 1
        doc = append_sample(path, _sample(CELLS, sha="def5678"))
        assert len(doc["samples"]) == 2
        loaded = load_trajectory(path)
        assert [s["git_sha"] for s in loaded["samples"]] == ["abc1234", "def5678"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v9", "samples": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)

    def test_collect_sample_shape(self):
        from repro.bench.regress import collect_sample

        sample = collect_sample(chunk=32, vec=4, k=2)
        assert sample["schema"] == SAMPLE_SCHEMA
        assert sample["k"] == 2
        assert sample["git_sha"]
        # 4 machines x 2 images x 5 implementations = 40 fig. 8 cells
        assert len(sample["cells"]) == 40
        assert all(v > 0 for v in sample["cells"].values())


class TestCompare:
    def test_no_change_is_clean(self):
        assert compare_cells(CELLS, dict(CELLS)) == []

    def test_injected_slowdown_is_flagged(self):
        slow = {k: v * 1.25 for k, v in CELLS.items()}
        regs = compare_cells(CELLS, slow, threshold=0.20)
        assert len(regs) == 2
        assert all(r.ratio == pytest.approx(1.25) for r in regs)

    def test_threshold_is_respected(self):
        slow = {k: v * 1.15 for k, v in CELLS.items()}
        assert compare_cells(CELLS, slow, threshold=0.20) == []
        assert len(compare_cells(CELLS, slow, threshold=0.10)) == 2

    def test_baseline_is_min_over_history(self):
        traj = new_trajectory()
        traj["samples"] = [
            _sample({"c": 100.0}),        # fast run
            _sample({"c": 140.0}),        # slow, noisy run
            _sample({"c": 125.0}),        # candidate: +25% vs best
        ]
        regs, info = compare_trajectory(traj, threshold=0.10)
        assert info["baseline_samples"] == 2
        assert [r.cell for r in regs] == ["c"]
        assert regs[0].baseline_ms == 100.0

    def test_single_sample_has_nothing_to_compare(self):
        traj = new_trajectory()
        traj["samples"] = [_sample(CELLS)]
        regs, info = compare_trajectory(traj)
        assert regs == []
        assert info["baseline_samples"] == 0

    def test_new_cells_are_ignored(self):
        current = dict(CELLS, **{"new|cell|Impl": 1.0})
        assert compare_cells(CELLS, current) == []

    def test_tuned_cells_are_informational_unless_gated(self):
        base = dict(CELLS, **{"tuned|tuned-harris-v1|A73|small": 1.0})
        cur = dict(CELLS, **{"tuned|tuned-harris-v1|A73|small": 5.0})
        traj = new_trajectory()
        traj["samples"] = [_sample(base), _sample(cur)]
        regs, info = compare_trajectory(traj, threshold=0.10)
        assert regs == []  # a re-tuned schedule must not gate by default
        assert info["gate_tuned"] is False
        regs, _ = compare_trajectory(traj, threshold=0.10, gate_tuned=True)
        assert [r.cell for r in regs] == ["tuned|tuned-harris-v1|A73|small"]

    def test_format_mentions_every_regression(self):
        regs = compare_cells(CELLS, {k: v * 2 for k, v in CELLS.items()})
        text = format_regressions(regs, {"cells": 2, "baseline_samples": 1,
                                         "threshold": 0.1})
        assert "REGRESSIONS (2)" in text
        assert "A53|small|Halide" in text


class TestCompareTool:
    def _write(self, path, samples):
        doc = new_trajectory()
        doc["samples"] = samples
        path.write_text(json.dumps(doc))

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(TOOL), *argv], capture_output=True, text=True
        )

    def test_exit_zero_on_no_change(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(path, [_sample(CELLS), _sample(CELLS)])
        proc = self._run("--trajectory", str(path))
        assert proc.returncode == 0, proc.stderr
        assert "no regressions" in proc.stdout

    def test_exit_nonzero_on_injected_slowdown(self, tmp_path):
        path = tmp_path / "traj.json"
        slow = {k: v * 1.25 for k, v in CELLS.items()}
        self._write(path, [_sample(CELLS), _sample(slow, sha="bad0000")])
        proc = self._run("--trajectory", str(path), "--threshold", "0.2")
        assert proc.returncode == 1
        assert "REGRESSIONS" in proc.stdout

    def test_exit_two_on_missing_trajectory(self, tmp_path):
        proc = self._run("--trajectory", str(tmp_path / "absent.json"))
        assert proc.returncode == 2

    def test_json_output(self, tmp_path):
        path = tmp_path / "traj.json"
        slow = {k: v * 1.5 for k, v in CELLS.items()}
        self._write(path, [_sample(CELLS), _sample(slow)])
        proc = self._run("--trajectory", str(path), "--json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert len(doc["regressions"]) == 2
        assert doc["regressions"][0]["ratio"] == pytest.approx(1.5)


class TestSloGate:
    """``--gate-slo``: the burn-rate gate over embedded serve metrics."""

    def _write(self, path, samples):
        doc = new_trajectory()
        doc["samples"] = samples
        path.write_text(json.dumps(doc))

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(TOOL), *argv], capture_output=True, text=True
        )

    def _serve_sample(self, counters, sha="serve01"):
        sample = _sample(CELLS, sha=sha)
        sample["metrics"] = {"counters": counters, "gauges": {}, "histograms": {}}
        return sample

    def test_healthy_serve_sample_gates_clean(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(
            path,
            [_sample(CELLS), self._serve_sample({"serve.requests": 100})],
        )
        proc = self._run("--trajectory", str(path), "--gate-slo")
        assert proc.returncode == 0, proc.stderr
        assert "all burn rates" in proc.stdout
        assert "serve01" in proc.stdout

    def test_injected_burn_regression_fails_the_gate(self, tmp_path):
        # 10% of submissions rejected against a 1% availability budget
        path = tmp_path / "traj.json"
        self._write(
            path,
            [
                _sample(CELLS),
                self._serve_sample(
                    {"serve.requests": 90, "serve.rejected": 10}, sha="burn01"
                ),
            ],
        )
        proc = self._run("--trajectory", str(path), "--gate-slo")
        assert proc.returncode == 1
        assert "BURN VIOLATION serve-availability" in proc.stderr

    def test_without_the_flag_burn_does_not_gate(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(
            path,
            [
                _sample(CELLS),
                self._serve_sample({"serve.requests": 90, "serve.rejected": 10}),
            ],
        )
        proc = self._run("--trajectory", str(path))
        assert proc.returncode == 0, proc.stderr

    def test_no_serve_metrics_is_skipped_not_failed(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(path, [_sample(CELLS), _sample(CELLS)])
        proc = self._run("--trajectory", str(path), "--gate-slo")
        assert proc.returncode == 0, proc.stderr
        assert "skipped" in proc.stdout

    def test_slo_max_burn_loosens_the_gate(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(
            path,
            [
                _sample(CELLS),
                self._serve_sample({"serve.requests": 98, "serve.rejected": 2}),
            ],
        )
        # burn 2.0: default max 1.0 fails, explicit 3.0 passes
        assert self._run("--trajectory", str(path), "--gate-slo").returncode == 1
        proc = self._run(
            "--trajectory", str(path), "--gate-slo", "--slo-max-burn", "3.0"
        )
        assert proc.returncode == 0, proc.stderr

    def test_json_output_carries_the_slo_section(self, tmp_path):
        path = tmp_path / "traj.json"
        self._write(
            path,
            [
                _sample(CELLS),
                self._serve_sample({"serve.requests": 90, "serve.rejected": 10}),
            ],
        )
        proc = self._run("--trajectory", str(path), "--gate-slo", "--json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["slo"]["violations"]
        assert doc["slo"]["violations"][0]["name"] == "serve-availability"

    def test_real_trajectory_gates_clean(self):
        # the acceptance criterion: the repo's own ledger must pass
        trajectory = TOOL.parent.parent / "BENCH_trajectory.json"
        if not trajectory.is_file():
            pytest.skip("no BENCH_trajectory.json in this checkout")
        proc = self._run("--trajectory", str(trajectory), "--gate-slo")
        assert proc.returncode == 0, proc.stdout + proc.stderr
