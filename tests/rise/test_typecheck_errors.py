"""Negative tests: the type checker rejects ill-formed programs with
useful errors (the safety net under every rewrite)."""

import pytest

from repro.nat import nat
from repro.rise import Identifier, TypeError_, array, array2d, f32, type_of, well_typed
from repro.rise.dsl import (
    as_vector,
    fun,
    join,
    lit,
    map_,
    reduce_,
    slide,
    split,
    transpose,
    zip_,
)

xs = Identifier("xs")
ys = Identifier("ys")


class TestRejections:
    def test_map_over_scalar(self):
        assert not well_typed(map_(fun(lambda v: v), lit(1.0)))

    def test_transpose_of_1d(self):
        assert not well_typed(transpose(xs), {"xs": array(4, f32)})

    def test_zip_mismatched_sizes(self):
        assert not well_typed(
            zip_(xs, ys), {"xs": array(3, f32), "ys": array(5, f32)}
        )

    def test_slide_window_larger_than_array(self):
        assert not well_typed(slide(5, 1, xs), {"xs": array(3, f32)})

    def test_split_indivisible_constant(self):
        assert not well_typed(split(3, xs), {"xs": array(8, f32)})

    def test_reduce_operator_arity(self):
        # reduce with a unary operator cannot type
        assert not well_typed(
            reduce_(fun(lambda a: a), lit(0.0), xs), {"xs": array(4, f32)}
        )

    def test_vector_width_mismatch(self):
        assert not well_typed(as_vector(4, xs), {"xs": array(9, f32)})

    def test_error_message_mentions_sizes(self):
        with pytest.raises(TypeError_, match="size|unify"):
            type_of(zip_(xs, ys), {"xs": array(3, f32), "ys": array(4, f32)})

    def test_rigid_user_sizes_not_unified(self):
        # n and m are user names: zip([n], [m]) must not silently set n = m
        assert not well_typed(
            zip_(xs, ys), {"xs": array("n", f32), "ys": array("m", f32)}
        )

    def test_postponed_constraint_reported(self):
        # join of unknown factorization that never resolves: 2d unknown
        prog = join(xs)
        t = type_of(prog, {"xs": array2d("n", "m", f32)})
        assert repr(t) == "[m*n]f32" or repr(t) == "[n*m]f32"


class TestAcceptances:
    def test_symbolic_slide_chain(self):
        prog = slide(3, 1, slide(3, 1, xs))
        t = type_of(prog, {"xs": array(nat("n") + 4, f32)})
        assert repr(t) == "[n][3][3]f32"

    def test_split_of_symbolic_product(self):
        t = type_of(split(8, xs), {"xs": array(nat("k") * 8, f32)})
        assert repr(t) == "[k][8]f32"
