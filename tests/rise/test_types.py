"""Tests for the RISE type system."""

import pytest

from repro.nat import nat
from repro.rise.types import (
    AddressSpace,
    ArrayType,
    FunType,
    PairType,
    ScalarType,
    TypeError_,
    VectorType,
    array,
    array2d,
    f32,
    f64,
    fun_type,
    i32,
    pair,
    vec,
)
from repro.rise.types import array_dims, array_elem


class TestConstruction:
    def test_scalars_distinct(self):
        assert f32 != f64 != i32
        assert f32 == ScalarType("f32")

    def test_array(self):
        t = array(4, f32)
        assert t.size == nat(4)
        assert t.elem == f32

    def test_array_symbolic(self):
        t = array("n", f32)
        assert t.free_nat_vars() == {"n"}

    def test_array2d(self):
        t = array2d("n", "m", f32)
        assert t == ArrayType(nat("n"), ArrayType(nat("m"), f32))

    def test_pair(self):
        t = pair(f32, array(2, f32))
        assert t.fst == f32
        assert isinstance(t.snd, ArrayType)

    def test_vector(self):
        t = vec(4, f32)
        assert t.size == nat(4)

    def test_fun_type_right_assoc(self):
        t = fun_type(f32, f32, f32)
        assert t == FunType(f32, FunType(f32, f32))

    def test_fun_type_empty(self):
        with pytest.raises(TypeError_):
            fun_type()

    def test_address_spaces(self):
        assert AddressSpace.PRIVATE is not AddressSpace.GLOBAL


class TestStructure:
    def test_equality_uses_nat_normal_form(self):
        n = nat("n")
        assert array(n + 2 - 1, f32) == array(n + 1, f32)

    def test_free_nat_vars_nested(self):
        t = array2d(nat("n") + 4, nat("m"), f32)
        assert t.free_nat_vars() == {"n", "m"}

    def test_free_type_vars(self):
        from repro.rise.types import TypeVar

        t = FunType(TypeVar("a"), array(2, TypeVar("b")))
        assert t.free_type_vars() == {"a", "b"}

    def test_array_dims(self):
        t = array2d(3, 5, f32)
        assert [d.constant_value() for d in array_dims(t)] == [3, 5]

    def test_array_elem(self):
        t = array2d(3, 5, f32)
        assert array_elem(t, 2) == f32
        with pytest.raises(TypeError_):
            array_elem(t, 3)

    def test_repr_readable(self):
        assert repr(array2d("n", 3, f32)) == "[n][3]f32"
        assert repr(vec(4, f32)) == "<4>f32"
        assert repr(pair(f32, f32)) == "(f32 x f32)"
