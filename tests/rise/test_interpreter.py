"""Tests for the RISE denotational interpreter (the semantic oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rise import EvalError, Identifier, evaluate, from_numpy, to_numpy
from repro.rise.dsl import (
    arr,
    as_scalar,
    as_vector,
    circular_buffer,
    dot,
    fst,
    fun,
    join,
    let,
    lit,
    make_pair,
    map_,
    map_seq,
    map_vec,
    pipe,
    reduce_,
    reduce_seq,
    rotate_values,
    slide,
    snd,
    split,
    transpose,
    unzip_,
    vector_from_scalar,
    zip_,
)
from repro.rise.types import AddressSpace

xs = Identifier("xs")
ys = Identifier("ys")
img = Identifier("img")


def run(prog, **env):
    value_env = {
        k: from_numpy(v) if isinstance(v, np.ndarray) else v for k, v in env.items()
    }
    return evaluate(prog, value_env)


def run_np(prog, **env):
    return to_numpy(run(prog, **env))


class TestScalars:
    def test_literal(self):
        assert float(run(lit(2.5))) == 2.5

    def test_arithmetic_sugar(self):
        assert float(run(lit(2.0) * lit(3.0) + lit(1.0))) == 7.0

    def test_sub_div(self):
        assert float(run((lit(7.0) - lit(1.0)) / lit(3.0))) == 2.0

    def test_let(self):
        assert float(run(let(lit(3.0), lambda v: v * v))) == 9.0

    def test_unbound(self):
        with pytest.raises(EvalError, match="unbound"):
            run(Identifier("nope"))


class TestPatterns:
    def test_map(self):
        out = run_np(map_(fun(lambda x: x * lit(2.0)), xs), xs=np.arange(4.0))
        np.testing.assert_allclose(out, [0, 2, 4, 6])

    def test_reduce(self):
        out = run(
            reduce_(fun(lambda a, b: a + b), lit(0.0), xs), xs=np.arange(5.0)
        )
        assert float(out) == 10.0

    def test_reduce_order_matters(self):
        # non-commutative op: reduce is a left fold
        out = run(reduce_(fun(lambda a, b: a - b), lit(0.0), xs), xs=np.arange(4.0))
        assert float(out) == -6.0

    def test_zip_project(self):
        prog = map_(fun(lambda p: fst(p) * snd(p)), zip_(xs, ys))
        out = run_np(prog, xs=np.array([1.0, 2, 3]), ys=np.array([4.0, 5, 6]))
        np.testing.assert_allclose(out, [4, 10, 18])

    def test_zip_mismatch(self):
        with pytest.raises(EvalError, match="mismatch"):
            run(zip_(xs, ys), xs=np.arange(3.0), ys=np.arange(4.0))

    def test_unzip(self):
        prog = fst(unzip_(zip_(xs, ys)))
        out = run_np(prog, xs=np.arange(3.0), ys=np.arange(3.0) + 10)
        np.testing.assert_allclose(out, [0, 1, 2])

    def test_transpose(self):
        out = run_np(transpose(img), img=np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(out, np.arange(6.0).reshape(2, 3).T)

    def test_slide(self):
        out = run_np(slide(3, 1, xs), xs=np.arange(5.0))
        np.testing.assert_allclose(out, [[0, 1, 2], [1, 2, 3], [2, 3, 4]])

    def test_slide_step2(self):
        out = run_np(slide(3, 2, xs), xs=np.arange(7.0))
        np.testing.assert_allclose(out, [[0, 1, 2], [2, 3, 4], [4, 5, 6]])

    def test_slide_mismatch(self):
        with pytest.raises(EvalError, match="slide mismatch"):
            run(slide(3, 2, xs), xs=np.arange(6.0))

    def test_split_join(self):
        out = run_np(join(split(2, xs)), xs=np.arange(6.0))
        np.testing.assert_allclose(out, np.arange(6.0))

    def test_split_shape(self):
        out = run_np(split(3, xs), xs=np.arange(6.0))
        assert out.shape == (2, 3)

    def test_dot(self):
        out = run(dot(arr([1, 2, 1]))(xs), xs=np.array([3.0, 4.0, 5.0]))
        assert float(out) == 3 + 8 + 5


class TestLowLevel:
    def test_map_seq_equals_map(self):
        f = fun(lambda x: x * x)
        a = run_np(map_(f, xs), xs=np.arange(4.0))
        b = run_np(map_seq(f, xs), xs=np.arange(4.0))
        np.testing.assert_allclose(a, b)

    def test_reduce_seq(self):
        out = run(reduce_seq(fun(lambda a, b: a + b), lit(0.0), xs), xs=np.arange(4.0))
        assert float(out) == 6.0

    def test_vector_roundtrip(self):
        prog = as_scalar(as_vector(4, xs))
        out = run_np(prog, xs=np.arange(8.0))
        np.testing.assert_allclose(out, np.arange(8.0))

    def test_map_vec(self):
        prog = as_scalar(map_(map_vec(fun(lambda x: x * lit(3.0))), as_vector(4, xs)))
        out = run_np(prog, xs=np.arange(8.0))
        np.testing.assert_allclose(out, np.arange(8.0) * 3)

    def test_vector_from_scalar(self):
        out = run(vector_from_scalar(4, lit(2.0)))
        np.testing.assert_allclose(out, [2, 2, 2, 2])

    def test_circular_buffer_matches_slide_of_map(self):
        f = fun(lambda x: x * lit(10.0))
        reference = run_np(slide(3, 1, map_(f, xs)), xs=np.arange(6.0))
        buffered = run_np(
            circular_buffer(AddressSpace.GLOBAL, 3, f, xs), xs=np.arange(6.0)
        )
        np.testing.assert_allclose(buffered, reference)

    def test_rotate_values_matches_slide(self):
        reference = run_np(slide(3, 1, xs), xs=np.arange(6.0))
        rotated = run_np(rotate_values(AddressSpace.PRIVATE, 3, xs), xs=np.arange(6.0))
        np.testing.assert_allclose(rotated, reference)


class TestNumpyBridge:
    def test_roundtrip_2d(self):
        a = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(to_numpy(from_numpy(a)), a)

    def test_pairs_cannot_convert(self):
        with pytest.raises(EvalError):
            to_numpy(run(zip_(xs, ys), xs=np.arange(2.0), ys=np.arange(2.0)))


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=3, max_size=12))
    def test_slide_windows_content(self, values):
        data = np.asarray(values, dtype=np.float32)
        out = run_np(slide(3, 1, xs), xs=data)
        for i in range(len(values) - 2):
            np.testing.assert_allclose(out[i], data[i : i + 3])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 4),
        st.lists(st.floats(-10, 10), min_size=12, max_size=12),
    )
    def test_split_join_identity(self, chunk_pow, values):
        chunk = [1, 2, 3, 4][chunk_pow - 1]
        if 12 % chunk != 0:
            chunk = 2
        data = np.asarray(values, dtype=np.float32)
        out = run_np(join(split(chunk, xs)), xs=data)
        np.testing.assert_allclose(out, data)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
    def test_map_then_reduce_equals_numpy(self, values):
        data = np.asarray(values, dtype=np.float32)
        prog = reduce_(
            fun(lambda a, b: a + b), lit(0.0), map_(fun(lambda x: x * x), xs)
        )
        out = run(prog, xs=data)
        np.testing.assert_allclose(
            float(out), float((data.astype(np.float32) ** 2).sum(dtype=np.float32)),
            rtol=1e-4,
        )
