"""Tests for the builder DSL."""

import pytest

from repro.rise import App, Identifier, Lambda
from repro.rise.dsl import (
    arr,
    compose,
    dot,
    fun,
    id_fun,
    let,
    lit,
    map_,
    pipe,
    slide,
)
from repro.rise.expr import Let, Literal, Slide
from repro.nat import nat


class TestFun:
    def test_param_names_from_python(self):
        lam = fun(lambda accumulator: accumulator)
        assert lam.param.name.startswith("accumulator")

    def test_multi_param_curry(self):
        lam = fun(lambda a, b: a + b)
        assert isinstance(lam, Lambda)
        assert isinstance(lam.body, Lambda)

    def test_fresh_names_unique(self):
        a = fun(lambda x: x)
        b = fun(lambda x: x)
        assert a.param.name != b.param.name

    def test_non_expr_body_rejected(self):
        with pytest.raises(TypeError):
            fun(lambda x: 42)


class TestBuilders:
    def test_pipe_order(self):
        x = Identifier("x")
        f, g = Identifier("f"), Identifier("g")
        assert pipe(x, f, g) == App(g, App(f, x))

    def test_compose_matches_pipe(self):
        from repro.rise.traverse import alpha_equal

        f, g = id_fun(), id_fun()
        x = Identifier("x")
        composed = App(compose(f, g), x)
        from repro.rules.algorithmic import beta_reduction
        from repro.elevate import normalize

        assert alpha_equal(
            normalize(beta_reduction).apply(composed),
            normalize(beta_reduction).apply(pipe(x, f, g)),
        )

    def test_let_builds_node(self):
        e = let(lit(1.0), lambda v: v, name="tmp")
        assert isinstance(e, Let)
        assert e.ident.name.startswith("tmp")

    def test_arr_nested(self):
        a = arr([[1, 2], [3, 4]])
        assert a.shape() == (2, 2)

    def test_arr_normalizes_to_float(self):
        a = arr([1, 2])
        assert all(isinstance(v, float) for v in a.values)

    def test_slide_nat_params(self):
        s = slide(3, 1)
        assert isinstance(s, Slide)
        assert s.size == nat(3)

    def test_partial_vs_applied(self):
        f = id_fun()
        assert isinstance(map_(f), App)          # partial: map(f)
        x = Identifier("x")
        applied = map_(f, x)
        assert isinstance(applied, App) and applied.arg is x

    def test_dot_shape(self):
        d = dot(arr([1, 2, 3]))
        assert isinstance(d, Lambda)
