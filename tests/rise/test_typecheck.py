"""Tests for RISE type inference, including symbolic-size unification."""

import pytest

from repro.nat import nat
from repro.rise import (
    ArrayType,
    FunType,
    Identifier,
    PairType,
    TypeError_,
    VectorType,
    array,
    array2d,
    f32,
    infer_types,
    type_of,
    well_typed,
)
from repro.rise.dsl import (
    arr,
    as_scalar,
    as_vector,
    circular_buffer,
    dot,
    fst,
    fun,
    join,
    let,
    lit,
    make_pair,
    map_,
    map_seq,
    map_vec,
    pipe,
    reduce_,
    reduce_seq,
    rotate_values,
    slide,
    snd,
    split,
    transpose,
    unzip_,
    vector_from_scalar,
    zip_,
)
from repro.rise.types import AddressSpace

xs = Identifier("xs")
ys = Identifier("ys")
img = Identifier("img")

N = nat("n")
M = nat("m")


class TestBasics:
    def test_literal(self):
        assert type_of(lit(1.0)) == f32

    def test_unbound_identifier(self):
        with pytest.raises(TypeError_, match="unbound"):
            type_of(Identifier("nope"))

    def test_identifier_env(self):
        assert type_of(xs, {"xs": array(4, f32)}) == array(4, f32)

    def test_lambda_identity_applied(self):
        prog = fun(lambda x: x)(lit(2.0))
        assert type_of(prog) == f32

    def test_array_literal(self):
        assert type_of(arr([1, 2, 3])) == array(3, f32)
        assert type_of(arr([[1, 2], [3, 4]])) == array2d(2, 2, f32)

    def test_let(self):
        prog = let(lit(1.0), lambda v: v + v)
        assert type_of(prog) == f32

    def test_applying_non_function(self):
        with pytest.raises(TypeError_, match="non-function"):
            type_of(lit(1.0)(lit(2.0)))


class TestPatterns:
    def test_map(self):
        prog = map_(fun(lambda x: x * lit(2.0)), xs)
        assert type_of(prog, {"xs": array(N, f32)}) == array(N, f32)

    def test_map_partial(self):
        prog = map_(fun(lambda x: x))
        t = type_of(prog, {})
        assert isinstance(t, FunType)

    def test_reduce(self):
        prog = reduce_(fun(lambda a, b: a + b), lit(0.0), xs)
        assert type_of(prog, {"xs": array(N, f32)}) == f32

    def test_zip(self):
        prog = zip_(xs, ys)
        t = type_of(prog, {"xs": array(N, f32), "ys": array(N, f32)})
        assert t == array(N, PairType(f32, f32))

    def test_zip_size_mismatch(self):
        assert not well_typed(zip_(xs, ys), {"xs": array(3, f32), "ys": array(4, f32)})

    def test_unzip(self):
        prog = unzip_(zip_(xs, ys))
        t = type_of(prog, {"xs": array(N, f32), "ys": array(N, f32)})
        assert t == PairType(array(N, f32), array(N, f32))

    def test_pair_projections(self):
        assert type_of(fst(make_pair(lit(1.0), arr([1, 2])))) == f32
        assert type_of(snd(make_pair(lit(1.0), arr([1, 2])))) == array(2, f32)

    def test_transpose(self):
        prog = transpose(img)
        assert type_of(prog, {"img": array2d(N, M, f32)}) == array2d(M, N, f32)

    def test_slide_concrete(self):
        assert type_of(slide(3, 1, xs), {"xs": array(10, f32)}) == array2d(8, 3, f32)

    def test_slide_symbolic(self):
        t = type_of(slide(3, 1, xs), {"xs": array(N + 2, f32)})
        assert t == array2d(N, 3, f32)

    def test_slide_with_step(self):
        # [n*2 + 1] with windows of 3, step 2 -> n windows
        t = type_of(slide(3, 2, xs), {"xs": array(N * 2 + 1, f32)})
        assert t == array2d(N, 3, f32)

    def test_split_join_roundtrip(self):
        prog = join(split(4, xs))
        assert type_of(prog, {"xs": array(N * 4, f32)}) == array(N * 4, f32)

    def test_split_indivisible(self):
        assert not well_typed(split(4, xs), {"xs": array(10, f32)})

    def test_dot(self):
        prog = dot(arr([1, 2, 3]))(xs)
        assert type_of(prog, {"xs": array(3, f32)}) == f32

    def test_dot_size_mismatch(self):
        assert not well_typed(dot(arr([1, 2, 3]))(xs), {"xs": array(4, f32)})


class TestLowLevelPatterns:
    def test_map_seq(self):
        prog = map_seq(fun(lambda x: x), xs)
        assert type_of(prog, {"xs": array(N, f32)}) == array(N, f32)

    def test_reduce_seq(self):
        prog = reduce_seq(fun(lambda a, b: a + b), lit(0.0), xs)
        assert type_of(prog, {"xs": array(N, f32)}) == f32

    def test_as_vector(self):
        t = type_of(as_vector(4, xs), {"xs": array(N * 4, f32)})
        assert t == ArrayType(N, VectorType(nat(4), f32))

    def test_as_vector_indivisible(self):
        assert not well_typed(as_vector(4, xs), {"xs": array(10, f32)})

    def test_as_scalar_roundtrip(self):
        prog = as_scalar(as_vector(4, xs))
        assert type_of(prog, {"xs": array(N * 4, f32)}) == array(N * 4, f32)

    def test_vector_from_scalar(self):
        assert type_of(vector_from_scalar(4, lit(0.0))) == VectorType(nat(4), f32)

    def test_map_vec(self):
        prog = map_(map_vec(fun(lambda x: x + lit(1.0))), as_vector(4, xs))
        t = type_of(prog, {"xs": array(N * 4, f32)})
        assert t == ArrayType(N, VectorType(nat(4), f32))

    def test_circular_buffer(self):
        prog = circular_buffer(AddressSpace.GLOBAL, 3, fun(lambda x: x), xs)
        t = type_of(prog, {"xs": array(N + 2, f32)})
        assert t == array2d(N, 3, f32)

    def test_circular_buffer_transforms_elements(self):
        line = array(M, f32)
        prog = circular_buffer(
            AddressSpace.GLOBAL,
            3,
            fun(lambda row: map_(fun(lambda x: x * lit(2.0)), row)),
            img,
        )
        t = type_of(prog, {"img": ArrayType(N + 2, line)})
        assert t == ArrayType(N, ArrayType(nat(3), line))

    def test_rotate_values(self):
        prog = rotate_values(AddressSpace.PRIVATE, 3, xs)
        assert type_of(prog, {"xs": array(N + 2, f32)}) == array2d(N, 3, f32)


class TestPipelines:
    def test_2d_stencil_shape(self):
        """slide2d expansion: map(slide) |> slide |> map(transpose)."""
        prog = pipe(
            img,
            map_(slide(3, 1)),
            slide(3, 1),
            map_(transpose()),
        )
        t = type_of(prog, {"img": array2d(N + 2, M + 2, f32)})
        # [n][m][3][3] neighborhoods
        assert t == ArrayType(N, ArrayType(M, array2d(3, 3, f32)))

    def test_types_are_preserved_by_annotation(self):
        prog = map_(fun(lambda x: x * lit(2.0)), xs)
        typing = infer_types(prog, {"xs": array(8, f32)})
        assert typing.root_type == array(8, f32)
        # The lambda node exists in the typing.
        lam = prog.fun.arg if hasattr(prog, "fun") else None
