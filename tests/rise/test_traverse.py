"""Tests for AST traversal, substitution and alpha-equivalence."""

from repro.rise.dsl import fst, fun, let, lit, map_, pipe, zip_
from repro.rise.expr import App, Identifier, Lambda, Let, Map
from repro.rise.traverse import (
    alpha_equal,
    app_spine,
    children,
    count_nodes,
    free_identifiers,
    from_spine,
    rebuild,
    substitute,
    subterms,
)

x = Identifier("x")
y = Identifier("y")


class TestChildren:
    def test_leaf_has_no_children(self):
        assert children(x) == []
        assert children(Map()) == []

    def test_app_children(self):
        e = App(x, y)
        assert children(e) == [x, y]

    def test_lambda_children_exclude_binder(self):
        lam = Lambda(x, App(x, y))
        assert children(lam) == [lam.body]

    def test_let_children(self):
        e = Let(x, y, App(x, x))
        assert len(children(e)) == 2

    def test_rebuild_identity_preserves_object(self):
        e = App(x, y)
        assert rebuild(e, [x, y]) is e

    def test_rebuild_changes(self):
        e = App(x, y)
        e2 = rebuild(e, [y, y])
        assert isinstance(e2, App) and e2.fun is y

    def test_subterms_count(self):
        e = App(App(x, y), x)
        assert count_nodes(e) == 5
        assert len(list(subterms(e))) == 5


class TestFreeIdentifiers:
    def test_identifier(self):
        assert free_identifiers(x) == {"x"}

    def test_lambda_binds(self):
        assert free_identifiers(Lambda(x, App(x, y))) == {"y"}

    def test_let_binds_body_only(self):
        e = Let(x, App(x, y), x)
        # the value's x is free (let is not recursive)
        assert free_identifiers(e) == {"x", "y"}


class TestSubstitution:
    def test_basic(self):
        e = substitute(App(x, y), "x", y)
        assert e == App(y, y)

    def test_shadowed(self):
        lam = Lambda(x, x)
        assert substitute(lam, "x", y) is lam

    def test_capture_avoided(self):
        # (fun y. x)[x := y]  must NOT capture
        lam = Lambda(y, x)
        result = substitute(lam, "x", y)
        assert isinstance(result, Lambda)
        assert result.param.name != "y"
        assert free_identifiers(result) == {"y"}


class TestAlphaEqual:
    def test_renamed_lambdas(self):
        a = fun(lambda v: v + lit(1.0))
        b = fun(lambda w: w + lit(1.0))
        assert a != b  # structurally different names
        assert alpha_equal(a, b)

    def test_different_bodies(self):
        a = fun(lambda v: v + lit(1.0))
        b = fun(lambda v: v + lit(2.0))
        assert not alpha_equal(a, b)

    def test_free_vars_must_match(self):
        assert not alpha_equal(x, y)
        assert alpha_equal(x, x)

    def test_nested_lets(self):
        a = let(lit(1.0), lambda v: v * v)
        b = let(lit(1.0), lambda w: w * w)
        assert alpha_equal(a, b)

    def test_bound_vs_free_confusion(self):
        # fun x. y  vs  fun y. y  are different
        a = Lambda(x, y)
        b = Lambda(y, y)
        assert not alpha_equal(a, b)


class TestSpine:
    def test_roundtrip(self):
        e = App(App(App(x, y), x), y)
        head, args = app_spine(e)
        assert head is x
        assert len(args) == 3
        assert from_spine(head, args) == e

    def test_non_app(self):
        head, args = app_spine(x)
        assert head is x and args == []
