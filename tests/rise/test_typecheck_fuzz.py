"""Type-checker rejection fuzzing.

The generator's ill-typed mutation mode derives broken variants of
well-typed programs (unbound identifiers, scalars where arrays flow,
broken size equations, non-function application, zip length mismatches).
Every mutant must be *rejected with a typed error* — ``TypeError_`` —
never accepted and never crashed with an unrelated exception.
"""

import random

import pytest

from repro.rise.typecheck import infer_types, well_typed
from repro.rise.types import TypeError_
from repro.verify.gen import generate_program, mutate_ill_typed

SEEDS = list(range(80))


@pytest.mark.parametrize("seed", SEEDS)
def test_every_mutant_raises_a_typed_error(seed):
    gp = generate_program(seed)
    mutant = mutate_ill_typed(random.Random(seed + 0xBAD), gp)
    with pytest.raises(TypeError_):
        infer_types(mutant.expr, mutant.type_env, strict=True)


def test_all_mutation_kinds_are_exercised():
    kinds = set()
    for seed in SEEDS:
        gp = generate_program(seed)
        kinds.add(mutate_ill_typed(random.Random(seed + 0xBAD), gp).kind)
    assert kinds >= {
        "unbound-identifier",
        "apply-non-function",
        "scalar-for-array",
    }


def test_mutation_is_deterministic():
    gp = generate_program(13)
    a = mutate_ill_typed(random.Random(42), gp)
    b = mutate_ill_typed(random.Random(42), gp)
    assert a.kind == b.kind
    from repro.engine.hashing import structural_hash

    assert structural_hash(a.expr) == structural_hash(b.expr)


def test_originals_remain_well_typed():
    # The mutation machinery must not mutate the source program in place.
    for seed in SEEDS[:20]:
        gp = generate_program(seed)
        mutate_ill_typed(random.Random(seed), gp)
        assert well_typed(gp.expr, gp.type_env)
