"""Tests for the pretty-printer (used in examples and error messages)."""

from repro.rise.dsl import arr, dot, fun, lit, map_, slide, zip_
from repro.rise.expr import Identifier
from repro.rise.pprint import pretty
from repro.rise.types import AddressSpace


class TestPretty:
    def test_identifier(self):
        assert pretty(Identifier("xs")) == "xs"

    def test_literal(self):
        assert pretty(lit(1.5)) == "1.5"
        assert pretty(lit(2.0)) == "2"

    def test_array_literal(self):
        assert pretty(arr([1, 2, 1])) == "[1, 2, 1]"
        assert pretty(arr([[1, 2], [3, 4]])) == "[[1, 2], [3, 4]]"

    def test_arith_sugar(self):
        e = lit(1.0) + lit(2.0) * lit(3.0)
        assert pretty(e) == "(1 + (2 * 3))"

    def test_slide_params_shown(self):
        xs = Identifier("xs")
        assert "slide(3,1)" in pretty(slide(3, 1, xs))

    def test_application(self):
        xs = Identifier("xs")
        text = pretty(map_(fun(lambda v: v), xs))
        assert text.startswith("map(")
        assert text.endswith("xs)")

    def test_circular_buffer_shows_addr(self):
        from repro.rise.dsl import circular_buffer, id_fun

        xs = Identifier("xs")
        text = pretty(circular_buffer(AddressSpace.GLOBAL, 3, id_fun(), xs))
        assert "circularBuffer(global,3)" in text

    def test_repr_is_pretty(self):
        xs = Identifier("xs")
        assert repr(xs) == "xs"
