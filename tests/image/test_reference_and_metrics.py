"""Tests for the numpy reference implementations and PSNR/MSE metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.image import PAPER_IMAGE_LARGE, PAPER_IMAGE_SMALL, mse, psnr, synthetic_rgb
from repro.image.metrics import PSNR_THRESHOLD_DB
from repro.image.reference import (
    GRAY_WEIGHTS,
    SOBEL_X,
    SOBEL_Y,
    conv2d_valid,
    coarsity,
    grayscale,
    harris,
    sobel_x,
    sobel_y,
    sum3x3,
)


class TestReference:
    def test_grayscale_weights(self):
        rgb = np.zeros((3, 4, 5), dtype=np.float32)
        rgb[0] = 1.0
        assert np.allclose(grayscale(rgb), GRAY_WEIGHTS[0])

    def test_grayscale_shape_check(self):
        with pytest.raises(ValueError):
            grayscale(np.zeros((4, 5), dtype=np.float32))

    def test_conv_valid_shrinks(self):
        img = np.ones((6, 8), dtype=np.float32)
        out = conv2d_valid(img, SOBEL_X)
        assert out.shape == (4, 6)

    def test_sobel_of_constant_is_zero(self):
        img = np.full((6, 8), 3.0, dtype=np.float32)
        assert np.allclose(sobel_x(img), 0)
        assert np.allclose(sobel_y(img), 0)

    def test_sobel_of_ramp(self):
        # horizontal ramp: sobel_x responds, sobel_y does not
        img = np.tile(np.arange(8.0, dtype=np.float32), (6, 1))
        assert np.allclose(sobel_x(img), 8.0)  # (1+2+1)*2 per unit step
        assert np.allclose(sobel_y(img), 0.0)

    def test_sum3x3(self):
        img = np.ones((5, 5), dtype=np.float32)
        assert np.allclose(sum3x3(img), 9.0)

    def test_coarsity_formula(self):
        sxx = np.array([[2.0]], dtype=np.float32)
        sxy = np.array([[1.0]], dtype=np.float32)
        syy = np.array([[3.0]], dtype=np.float32)
        out = coarsity(sxx, sxy, syy, 0.04)
        expected = 2 * 3 - 1 - 0.04 * (2 + 3) ** 2
        assert np.allclose(out, expected)

    def test_harris_output_shape(self):
        img = synthetic_rgb(12, 16)
        assert harris(img).shape == (8, 12)

    def test_harris_flat_image_is_zero(self):
        img = np.full((3, 10, 12), 0.5, dtype=np.float32)
        assert np.allclose(harris(img), 0.0, atol=1e-6)

    def test_harris_detects_corner(self):
        # a bright quadrant produces a stronger response near its corner
        img = np.zeros((3, 20, 20), dtype=np.float32)
        img[:, 10:, 10:] = 1.0
        response = harris(img)
        corner_region = np.abs(response[6:10, 6:10]).max()
        flat_region = np.abs(response[:3, :3]).max()
        assert corner_region > flat_region


class TestSyntheticImages:
    def test_deterministic(self):
        a = synthetic_rgb(16, 16, seed=3)
        b = synthetic_rgb(16, 16, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_content(self):
        assert not np.array_equal(synthetic_rgb(16, 16, 1), synthetic_rgb(16, 16, 2))

    def test_range(self):
        img = synthetic_rgb(32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_paper_specs(self):
        assert (PAPER_IMAGE_SMALL.height, PAPER_IMAGE_SMALL.width) == (1536, 2560)
        assert (PAPER_IMAGE_LARGE.height, PAPER_IMAGE_LARGE.width) == (4256, 2832)
        assert PAPER_IMAGE_LARGE.pixels > PAPER_IMAGE_SMALL.pixels


class TestMetrics:
    def test_mse_zero_for_identical(self):
        a = np.random.default_rng(0).random((8, 8))
        assert mse(a, a) == 0.0

    def test_psnr_inf_for_identical(self):
        a = np.random.default_rng(0).random((8, 8))
        assert math.isinf(psnr(a, a))

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = rng.random((32, 32))
        small = psnr(a, a + 1e-6 * rng.random((32, 32)))
        large = psnr(a, a + 1e-3 * rng.random((32, 32)))
        assert small > large > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_threshold_constant_matches_paper(self):
        assert PSNR_THRESHOLD_DB == 170.0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1e-8, 1e-2))
    def test_psnr_monotone_in_error(self, eps):
        a = np.linspace(0, 1, 64).reshape(8, 8)
        p1 = psnr(a, a + eps)
        p2 = psnr(a, a + 2 * eps)
        assert p1 >= p2
