"""Shared pytest fixtures and markers for the whole suite.

Conventions enforced here:

* ``@pytest.mark.requires_gcc`` — tests needing a working C toolchain
  are *skipped with a reason* on machines without one, never failed.
* ``fresh_metrics_registry`` — metrics tests get an isolated registry
  instead of depending on global-state ordering between tests.
* ``small_image`` — one shared, deterministically seeded RGB test image
  (the repo-wide seeding convention: every data source takes an explicit
  seed or ``numpy.random.Generator``; nothing touches numpy's global
  RNG state).
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    """Skip ``requires_gcc`` tests (with a reason) when no C compiler exists."""
    from repro.exec.cbridge import have_c_compiler

    if have_c_compiler():
        return
    skip = pytest.mark.skip(reason="requires a C compiler (none found on PATH)")
    for item in items:
        if "requires_gcc" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def small_image() -> np.ndarray:
    """A small deterministic RGB image (12x16, seed 3)."""
    from repro.image.data import synthetic_rgb

    return synthetic_rgb(12, 16, seed=3)


@pytest.fixture
def fresh_metrics_registry():
    """An empty process metrics registry, restored to empty afterwards."""
    from repro.observe.metrics import registry, reset_registry

    reset_registry()
    yield registry()
    reset_registry()


@pytest.fixture
def fresh_event_log():
    """The process event log, emptied (and sink-detached) around the test."""
    from repro.observe.events import event_log, reset_event_log

    reset_event_log()
    yield event_log()
    reset_event_log()


@pytest.fixture
def fresh_engine():
    """A private in-memory compile engine (no shared on-disk cache)."""
    from repro.engine.pipeline import Engine

    return Engine(cache_dir=None)
