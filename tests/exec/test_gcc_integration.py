"""Full-stack integration: every implementation of the evaluation is
compiled to C, built with the host C compiler, executed on a real image,
and checked against the numpy reference.  This is the repository's
equivalent of running the paper's artifact end to end."""

import numpy as np
import pytest

import repro
from repro.codegen import compile_program
from repro.image import synthetic_rgb, reference
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_rrot_version, cbuf_version

pytestmark = pytest.mark.requires_gcc

SENV = {"rgb": harris_input_type()}


@pytest.fixture(scope="module")
def image():
    img = synthetic_rgb(20, 24, seed=13)
    return img, reference.harris(img)


def _sizes(ref):
    return {"n": ref.shape[0], "m": ref.shape[1]}


class TestAllImplementationsThroughGcc:
    def test_rise_cbuf(self, image):
        img, ref = image
        out = repro.compile(
            harris(Identifier("rgb")),
            strategy=cbuf_version(SENV, chunk=4),
            type_env=SENV,
            backend="c",
            sizes=_sizes(ref),
            name="cbuf",
        ).run(rgb=img)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_rise_cbuf_rrot(self, image):
        img, ref = image
        out = repro.compile(
            harris(Identifier("rgb")),
            strategy=cbuf_rrot_version(SENV, chunk=4),
            type_env=SENV,
            backend="c",
            sizes=_sizes(ref),
            name="rot",
        ).run(rgb=img)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_halide(self, image):
        img, ref = image
        out = repro.compile(
            "harris-halide", options={"vec": 4, "split": 4}, backend="c",
            sizes=_sizes(ref),
        ).run(rgb=img)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_lift(self, image):
        img, ref = image
        out = repro.compile(
            "harris-lift", backend="c", sizes=_sizes(ref)
        ).run(rgb=img)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_opencv(self, image):
        img, ref = image
        hwc = np.ascontiguousarray(img.transpose(1, 2, 0))
        out = repro.compile(
            "harris-opencv", backend="c", sizes=_sizes(ref)
        ).run(rgb_hwc=hwc)
        np.testing.assert_allclose(out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4)

    def test_c_and_python_backends_bitwise_close(self, image):
        img, ref = image
        prog = compile_program(
            cbuf_rrot_version(SENV, chunk=4).apply(harris(Identifier("rgb"))),
            SENV,
            "rot2",
        )
        py = repro.compile(prog, sizes=_sizes(ref)).run(rgb=img)
        c = repro.compile(prog, backend="c", sizes=_sizes(ref)).run(rgb=img)
        np.testing.assert_allclose(py, c, rtol=1e-5, atol=1e-6)
