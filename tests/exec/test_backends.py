"""Tests for the execution backends: Python source emission and (when a C
compiler is available) the gcc/ctypes bridge."""

import numpy as np
import pytest

from repro.codegen import compile_program
from repro.codegen.cprint import nat_to_c, program_to_c
import repro
from repro.exec import program_to_python
from repro.nat import nat
from repro.rise import Identifier, array, array2d, f32
from repro.rise.dsl import fun, lit, map_seq, reduce_seq, slide

xs = Identifier("xs")


@pytest.fixture(scope="module")
def double_prog():
    prog = map_seq(fun(lambda v: v * lit(2.0)), xs)
    # NB: not "double" — kernel names become C identifiers
    return compile_program(prog, {"xs": array("n", f32)}, "dbl")


class TestPythonBackend:
    def test_source_is_valid_python(self, double_prog):
        source = program_to_python(double_prog, {"n": 4})
        compile(source, "<test>", "exec")
        assert "def dbl(" in source

    def test_run(self, double_prog):
        out = repro.compile(double_prog, sizes={"n": 4}).run(xs=np.arange(4.0))
        np.testing.assert_allclose(out, np.arange(4.0) * 2)

    def test_input_shapes_flattened(self, double_prog):
        out = repro.compile(double_prog, sizes={"n": 4}).run(
            xs=np.arange(4.0).reshape(2, 2)
        )
        assert out.shape == (4,)

    def test_missing_input_raises(self, double_prog):
        with pytest.raises(KeyError):
            repro.compile(double_prog, sizes={"n": 4}).run()

    def test_float32_semantics(self):
        # accumulation happens in float32, like the generated C
        prog = reduce_seq(fun(lambda a, b: a + b), lit(0.0), xs)
        from repro.rise.dsl import map_seq as ms

        wrapped = ms(fun(lambda row: reduce_seq(fun(lambda a, b: a + b), lit(0.0), row)),
                     Identifier("img"))
        compiled = compile_program(wrapped, {"img": array2d(1, "m", f32)}, "k")
        data = np.full(10_000, 0.1, dtype=np.float32).reshape(1, -1)
        out = repro.compile(compiled, sizes={"m": 10_000}).run(img=data)
        expected = np.float32(0)
        for _ in range(10_000):
            expected = np.float32(expected + np.float32(0.1))
        assert out[0] == expected


class TestCPrinter:
    def test_nat_to_c(self):
        n = nat("n")
        assert nat_to_c(n + 4) == "(4 + n)"
        assert nat_to_c(n * 2) == "(2 * n)"
        assert nat_to_c(nat(7)) == "7"
        assert "/" in nat_to_c((n + 1) // 2)
        assert "%" in nat_to_c((n + 1) % 2)

    def test_program_compilable_structure(self, double_prog):
        source = program_to_c(double_prog)
        assert "void dbl(" in source
        assert "restrict" in source
        assert "#include" in source

    def test_vector_helpers_present(self, double_prog):
        source = program_to_c(double_prog)
        assert "v4f_load" in source and "v4f_splat" in source

    def test_wide_vectors_get_their_own_types(self):
        # 8-lane values must print through 8-lane types: emitting them as
        # v4f silently dropped half the lanes (caught by the autotuner's
        # differential verification of vectorize(8) candidates)
        from repro.codegen.ir import (
            Block, Buffer, DeclVec, ImpFunction, ImpProgram, IConst,
            VLoad, VStore,
        )

        body = Block([
            DeclVec("v", 8, VLoad("xs", IConst(0), 8)),
            VStore("out", IConst(0), VLoad("xs", IConst(0), 8), 8),
        ])
        fn = ImpFunction(
            "wide", [Buffer("xs", nat(8))], Buffer("out", nat(8)), [], body
        )
        source = program_to_c(ImpProgram("wide", [fn], []))
        assert "typedef float v8f __attribute__((vector_size(32)))" in source
        assert "v8f_load" in source and "v8f_store" in source
        assert "v8f v = v8f_load" in source


@pytest.mark.requires_gcc
class TestCBridge:
    def test_simple_program(self, double_prog):
        out = repro.compile(double_prog, backend="c", sizes={"n": 6}).run(
            xs=np.arange(6.0)
        )
        np.testing.assert_allclose(out, np.arange(6.0) * 2)

    def test_agrees_with_python_backend(self):
        prog_expr = map_seq(
            fun(lambda w: reduce_seq(fun(lambda a, b: a + b), lit(0.0), w)),
            slide(3, 1, xs),
        )
        prog = compile_program(prog_expr, {"xs": array("n", f32)}, "sums")
        data = np.linspace(-2, 2, 9).astype(np.float32)
        py = repro.compile(prog, sizes={"n": 9}).run(xs=data)
        c = repro.compile(prog, backend="c", sizes={"n": 9}).run(xs=data)
        np.testing.assert_allclose(py, c, rtol=1e-6)
