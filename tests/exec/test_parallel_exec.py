"""Python-backend parallel execution: thread resolution, strip dispatch,
determinism, fallback accounting and the batch oversubscription policy."""

import numpy as np
import pytest

from repro.codegen import compile_program
from repro.codegen.ir import Block, For, IConst, ImpFunction, LoopKind, Buffer
from repro.exec.parallel import (
    MAX_THREADS,
    batch_worker_scope,
    effective_threads,
    in_batch_worker,
    resolve_threads,
)
from repro.exec.pyexec import (
    count_parallel_loops,
    execute_program,
    function_to_python_strips,
    program_to_python,
    strip_bounds,
    strippable_parallel_loop,
)
from repro.image import reference, synthetic_rgb
from repro.nat import nat
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version, naive_version

SENV = {"rgb": harris_input_type()}


@pytest.fixture(scope="module")
def parallel_program():
    low = cbuf_version(SENV, chunk=4, vec=4).apply(harris(Identifier("rgb")))
    return compile_program(low, SENV, "k")


@pytest.fixture(scope="module")
def image():
    img = synthetic_rgb(20, 20, seed=5)
    return img, reference.harris(img)


class TestThreadResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "7")
        assert resolve_threads(3) == 3

    def test_repro_env_beats_omp_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "5")
        monkeypatch.setenv("OMP_NUM_THREADS", "9")
        assert resolve_threads() == 5

    def test_omp_env_honored(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        monkeypatch.setenv("OMP_NUM_THREADS", "3")
        assert resolve_threads() == 3

    def test_clamped_to_bounds(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        assert resolve_threads(0) == 1
        assert resolve_threads(-4) == 1
        assert resolve_threads(10_000) == MAX_THREADS

    def test_garbage_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "lots")
        monkeypatch.setenv("OMP_NUM_THREADS", "2")
        assert resolve_threads() == 2

    def test_batch_scope_degrades_to_one(self):
        assert not in_batch_worker()
        with batch_worker_scope():
            assert in_batch_worker()
            assert effective_threads(8) == 1
        assert not in_batch_worker()
        assert effective_threads(8) == 8


class TestStripBounds:
    def test_partition_covers_range(self):
        for extent in (1, 3, 7, 8, 16):
            for threads in (1, 2, 3, 4, 9):
                bounds = strip_bounds(extent, threads)
                covered = [i for lo, hi in bounds for i in range(lo, hi)]
                assert covered == list(range(extent))

    def test_static_balance(self):
        sizes = [hi - lo for lo, hi in strip_bounds(10, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_no_empty_strips(self):
        assert strip_bounds(2, 8) == [(0, 1), (1, 2)]


class TestLoopKindSurfacing:
    def test_parallel_comment_in_source(self, parallel_program):
        """Satellite fix: pyexec used to silently drop LoopKind.PARALLEL;
        the generated source now surfaces it."""
        src = program_to_python(parallel_program, {"n": 16, "m": 16})
        assert "LoopKind.PARALLEL" in src

    def test_sequential_program_has_no_marker(self):
        low = naive_version().apply(harris(Identifier("rgb")))
        prog = compile_program(low, SENV, "k")
        src = program_to_python(prog, {"n": 16, "m": 16})
        assert "LoopKind.PARALLEL" not in src

    def test_count_parallel_loops(self, parallel_program):
        assert count_parallel_loops(parallel_program.functions[-1]) == 1


class TestStrippability:
    def test_cbuf_kernel_is_strippable(self, parallel_program):
        loop = strippable_parallel_loop(parallel_program.functions[-1])
        assert loop is not None and loop.kind is LoopKind.PARALLEL

    def test_two_top_level_parallel_loops_are_not(self):
        par = lambda var: For(var, IConst(4), Block([]), kind=LoopKind.PARALLEL)
        fn = ImpFunction(
            name="f",
            inputs=[Buffer("x", nat(16))],
            output=Buffer("out", nat(16)),
            size_vars=[],
            body=Block([par("i"), par("j")]),
        )
        assert strippable_parallel_loop(fn) is None

    def test_trailing_sequential_loop_blocks_stripping(self):
        fn = ImpFunction(
            name="f",
            inputs=[],
            output=Buffer("out", nat(16)),
            size_vars=[],
            body=Block(
                [
                    For("i", IConst(4), Block([]), kind=LoopKind.PARALLEL),
                    For("j", IConst(4), Block([])),
                ]
            ),
        )
        assert strippable_parallel_loop(fn) is None

    def test_strip_source_has_bounded_loop(self, parallel_program):
        src = function_to_python_strips(
            parallel_program.functions[-1], {"n": 16, "m": 16}
        )
        assert "__strip(_lo, _hi," in src
        assert "range(_lo, _hi)" in src


class TestStripExecution:
    def test_bit_identical_across_thread_counts(self, parallel_program, image):
        img, ref = image
        outs = {
            t: execute_program(
                parallel_program, {"n": 16, "m": 16}, {"rgb": img}, threads=t
            )
            for t in (1, 2, 4)
        }
        np.testing.assert_allclose(
            outs[1].reshape(16, 16), ref, rtol=1e-3, atol=1e-4
        )
        assert np.array_equal(outs[1], outs[2])
        assert np.array_equal(outs[1], outs[4])

    def test_strip_metrics_recorded(
        self, parallel_program, image, fresh_metrics_registry
    ):
        img, _ = image
        execute_program(parallel_program, {"n": 16, "m": 16}, {"rgb": img}, threads=2)
        snap = fresh_metrics_registry.snapshot()
        assert any(k.startswith("exec.py.parallel.strips") for k in snap["counters"])
        assert any(k.startswith("exec.py.parallel.loops") for k in snap["counters"])
        assert any(
            k.startswith("exec.py.parallel.span_ms") for k in snap["histograms"]
        )

    def test_sequential_fallback_counted(
        self, parallel_program, image, fresh_metrics_registry
    ):
        img, _ = image
        execute_program(parallel_program, {"n": 16, "m": 16}, {"rgb": img}, threads=1)
        snap = fresh_metrics_registry.snapshot()
        keys = [k for k in snap["counters"] if "exec.py.parallel.sequential" in k]
        assert keys and any("reason=threads" in k for k in keys)

    def test_batch_worker_degrades_nested_parallelism(
        self, parallel_program, image, fresh_metrics_registry
    ):
        """Oversubscription policy: inside a batch worker the strip pool
        is disabled even when threads would otherwise be > 1."""
        img, _ = image
        with batch_worker_scope():
            execute_program(
                parallel_program, {"n": 16, "m": 16}, {"rgb": img}, threads=4
            )
        snap = fresh_metrics_registry.snapshot()
        assert any("exec.py.parallel.sequential" in k for k in snap["counters"])
        assert not any("exec.py.parallel.strips" in k for k in snap["counters"])


class TestBatchOversubscription:
    def test_thread_batch_runs_items_sequentially_inside(
        self, image, fresh_metrics_registry, fresh_engine
    ):
        img, ref = image
        pipeline = fresh_engine.compile(
            harris(Identifier("rgb")),
            strategy=cbuf_version(SENV, chunk=4, vec=4),
            type_env=SENV,
            sizes={"n": 16, "m": 16},
        )
        batch = pipeline.run_batch([{"rgb": img}] * 3, workers=2, mode="thread")
        for out in batch.outputs:
            np.testing.assert_allclose(
                out.reshape(16, 16), ref, rtol=1e-3, atol=1e-4
            )
        snap = fresh_metrics_registry.snapshot()
        # every item saw the batch scope: nested parallel loops serialized
        assert not any("exec.py.parallel.strips" in k for k in snap["counters"])
