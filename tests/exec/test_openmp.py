"""OpenMP toolchain probing and flag wiring (the dead-pragma fix).

The C printer has always emitted ``#pragma omp parallel for`` on
``PARALLEL`` loops, but the bridge never passed ``-fopenmp``, so the
pragma was dead in every build.  These tests pin the fix: the configure
probe, the effective-flag resolution that every C compile now goes
through, and the exported thread-control helpers.
"""

import numpy as np
import pytest

from repro.codegen import compile_program
from repro.codegen.cprint import program_to_c
from repro.exec import cbridge
from repro.image import reference, synthetic_rgb
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_version

SENV = {"rgb": harris_input_type()}


def _parallel_program(name="k"):
    low = cbuf_version(SENV, chunk=4, vec=4).apply(harris(Identifier("rgb")))
    return compile_program(low, SENV, name)


class TestProbe:
    def test_probe_returns_bool(self):
        assert isinstance(cbridge.openmp_available(), bool)

    def test_probe_is_cached(self):
        assert cbridge.openmp_available() is cbridge.openmp_available()

    def test_no_compiler_means_no_openmp(self, monkeypatch):
        monkeypatch.setattr(cbridge, "have_c_compiler", lambda: False)
        cbridge.openmp_available.cache_clear()
        try:
            assert cbridge.openmp_available() is False
        finally:
            cbridge.openmp_available.cache_clear()


class TestEffectiveFlags:
    def test_flag_present_when_supported(self):
        """Regression: every effective flag set carries -fopenmp on a
        supporting toolchain (the pragma is not dead anymore)."""
        flags = cbridge.effective_cflags()
        if cbridge.openmp_available():
            assert cbridge.OPENMP_FLAG in flags
        else:
            assert cbridge.OPENMP_FLAG not in flags

    def test_flag_not_duplicated(self):
        flags = cbridge.effective_cflags(("-O2", cbridge.OPENMP_FLAG))
        assert flags.count(cbridge.OPENMP_FLAG) <= 1

    def test_base_flags_preserved(self):
        flags = cbridge.effective_cflags(("-O3", "-g"))
        assert flags[0] == "-O3" and flags[1] == "-g"


class TestGeneratedC:
    def test_pragma_on_parallel_loop(self):
        src = program_to_c(_parallel_program())
        assert "#pragma omp parallel for schedule(static)" in src

    def test_thread_helpers_exported(self):
        src = program_to_c(_parallel_program())
        assert "repro_set_threads" in src
        assert "repro_openmp_enabled" in src
        assert "repro_max_threads" in src

    def test_helpers_guarded_for_sequential_builds(self):
        # The helpers must compile without OpenMP too (graceful fallback).
        src = program_to_c(_parallel_program())
        assert "#ifdef _OPENMP" in src


@pytest.mark.requires_gcc
class TestOpenmpBuild:
    def test_set_library_threads_reports_openmp(self):
        prog = _parallel_program()
        lib = cbridge.compile_c_library(prog, extra_flags=cbridge.effective_cflags())
        try:
            enabled = cbridge.set_library_threads(lib, 2)
            assert enabled == cbridge.openmp_available()
        finally:
            lib.close()

    def test_sequential_build_pins_as_noop(self):
        prog = _parallel_program()
        lib = cbridge.compile_c_library(prog, extra_flags=("-O2",))
        try:
            assert cbridge.set_library_threads(lib, 4) is False
        finally:
            lib.close()

    def test_openmp_build_matches_reference(self):
        img = synthetic_rgb(20, 24, seed=13)
        ref = reference.harris(img)
        prog = _parallel_program()
        lib = cbridge.compile_c_library(prog, extra_flags=cbridge.effective_cflags())
        try:
            out = cbridge.execute_with_library(
                lib, prog, {"n": ref.shape[0], "m": ref.shape[1]}, {"rgb": img}
            )
            np.testing.assert_allclose(
                out.reshape(ref.shape), ref, rtol=1e-3, atol=1e-4
            )
        finally:
            lib.close()
