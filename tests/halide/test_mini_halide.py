"""Tests for the mini-Halide baseline compiler."""

import numpy as np
import pytest

from repro.halide import Func, HVar, ImageParam, compile_halide
from repro.halide.hir import _offset_of
from repro.halide.lower import _infer_bounds, HalideLowerError
import repro
from repro.image import synthetic_rgb, reference
from repro.nat import nat

x, y = HVar("x"), HVar("y")


class TestExprAlgebra:
    def test_offset_parsing(self):
        assert _offset_of(x, "x") == 0
        assert _offset_of(x + 2, "x") == 2
        assert _offset_of(x - 1, "x") == -1
        assert _offset_of(2 + x, "x") == 2

    def test_offset_wrong_dim(self):
        with pytest.raises(ValueError):
            _offset_of(x, "y")

    def test_define_once(self):
        f = Func("f")
        f[x, y] = x  # type: ignore[assignment]
        with pytest.raises(ValueError):
            f.define(x)


class TestBoundsInference:
    def test_stencil_chain(self):
        img = ImageParam("im")
        a = Func("a")
        a[x, y] = img[0](x, y) * 2.0
        b = Func("b")
        b[x, y] = a(x, y) + a(x + 2, y + 2)
        out = Func("out")
        out[x, y] = b(x, y) + b(x + 1, y + 1)
        a.compute_at(out, "yi").store_at(out, "yo")
        b.compute_at(out, "yi").store_at(out, "yo")
        ranges = _infer_bounds(out)
        rb = ranges[b]
        assert (rb.dx_min, rb.dx_max, rb.dy_min, rb.dy_max) == (0, 1, 0, 1)
        ra = ranges[a]
        # a's range flows through b's: 0..1 (+) 0..2 = 0..3
        assert (ra.dx_min, ra.dx_max, ra.dy_min, ra.dy_max) == (0, 3, 0, 3)

    def test_inline_funcs_flow_through(self):
        img = ImageParam("im")
        a = Func("a")
        a[x, y] = img[0](x, y)
        mid = Func("mid")  # inline
        mid[x, y] = a(x + 1, y + 1)
        out = Func("out")
        out[x, y] = mid(x + 1, y + 1)
        a.compute_at(out, "yi").store_at(out, "yo")
        ranges = _infer_bounds(out)
        ra = ranges[a]
        assert (ra.dx_min, ra.dy_max) == (2, 2)

    def test_undefined_func_rejected(self):
        out = Func("out")
        ghost = Func("ghost")
        ghost.compute_at(out, "yi")
        out[x, y] = ghost(x, y)
        with pytest.raises(HalideLowerError):
            _infer_bounds(out)


class TestHarrisBaseline:
    @pytest.fixture(scope="class")
    def prog(self):
        return repro.compile(
            "harris-halide", options={"vec": 4, "split": 4}
        ).program

    def test_single_kernel(self, prog):
        assert len(prog.functions) == 1

    def test_correct(self, prog):
        img = synthetic_rgb(16, 20)
        out = repro.compile(
            "harris-halide", options={"vec": 4, "split": 4}, sizes={"n": 12, "m": 16}
        ).run(rgb=img)
        np.testing.assert_allclose(
            out.reshape(12, 16), reference.harris(img), rtol=1e-3, atol=1e-4
        )

    def test_other_split(self):
        img = synthetic_rgb(14, 16)
        out = repro.compile(
            "harris-halide", options={"vec": 4, "split": 2}, sizes={"n": 10, "m": 12}
        ).run(rgb=img)
        np.testing.assert_allclose(
            out.reshape(10, 12), reference.harris(img), rtol=1e-3, atol=1e-4
        )

    def test_parallel_outer_loop(self, prog):
        from repro.codegen.ir import For, LoopKind, walk_stmts

        kinds = [s.kind for s in walk_stmts(prog.functions[0].body) if isinstance(s, For)]
        assert LoopKind.PARALLEL in kinds
        assert LoopKind.VEC in kinds

    def test_three_folded_buffers(self, prog):
        # gray + Ix + Iy are store_at'ed: three line buffers
        assert len(prog.functions[0].temporaries) == 3

    def test_compute_with_fuses_loops(self, prog):
        """Ix.compute_with(Iy, x): one x-loop computes both sobel rows, so
        the steady state has 3 row loops (gray, iy+ix fused, output), not 4."""
        from repro.codegen.ir import For, LoopKind, walk_stmts

        vec_loops = [
            s for s in walk_stmts(prog.functions[0].body)
            if isinstance(s, For) and s.kind is LoopKind.VEC
        ]
        # prologue rows (4 gray + 2 sobel = 6 emissions) + steady (3) + output
        # exact count depends on unrolled prologue; fused sobel means strictly
        # fewer loops than with separate Ix and Iy computation
        assert len(vec_loops) <= 12
