"""Spans and counters: nesting, timing, activation scoping."""

import time

from repro.observe import Observer, active, count, observing, span


class TestSpans:
    def test_inactive_by_default(self):
        assert active() is None
        # module-level helpers are no-ops without an observer
        with span("nothing") as s:
            count("nothing")
        assert s.name == "<disabled>"

    def test_nested_spans(self):
        with observing() as obs:
            with span("outer") as outer:
                with span("inner-a"):
                    time.sleep(0.001)
                with span("inner-b"):
                    pass
        assert [s.name for s in obs.spans] == ["outer"]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        # parent wall time covers its children
        assert outer.duration_ms >= outer.children[0].duration_ms
        assert outer.children[0].duration_ms >= 1.0

    def test_flat_spans_preorder(self):
        with observing() as obs:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        assert [s.name for s in obs.flat_spans()] == ["a", "b", "c"]

    def test_counters(self):
        with observing() as obs:
            count("x")
            count("x", 2)
            count("y")
        assert obs.counters == {"x": 3, "y": 1}

    def test_activation_is_scoped(self):
        with observing() as obs:
            assert active() is obs
        assert active() is None

    def test_span_meta_and_serialization(self):
        with observing() as obs:
            with span("k", program="p") as s:
                s.meta["extra"] = 1
        d = obs.to_dict()
        assert d["spans"][0]["name"] == "k"
        assert d["spans"][0]["meta"] == {"program": "p", "extra": 1}
        assert "counters" in d

    def test_render_text(self):
        with observing() as obs:
            with span("phase-x"):
                count("n.things", 4)
        text = obs.render_text()
        assert "phase-x" in text
        assert "n.things" in text


class TestInterpreterCounters:
    def test_primitive_counts(self):
        from repro.rise import evaluate
        from repro.rise.dsl import arr, fun, lit, map_, reduce_

        prog = reduce_(fun(lambda a, x: a + x), lit(0.0), map_(
            fun(lambda x: x * lit(2.0)), arr([1, 2, 3])))
        with observing() as obs:
            result = evaluate(prog)
        assert float(result) == 12.0
        assert obs.counters.get("interp.Map") == 1
        assert obs.counters.get("interp.Reduce") == 1
        # scalar ops fire once per element / reduction step
        assert obs.counters.get("interp.ScalarOp", 0) >= 2
