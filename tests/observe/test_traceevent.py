"""Chrome trace-event export: event shape, timeline layout, file output."""

import json
import threading
import time

from repro.observe import Observer, observing, span, count
from repro.observe.core import Span
from repro.observe.traceevent import (
    SYNTHETIC_TID_BASE,
    save_trace,
    to_chrome_trace,
    trace_events,
)


def _complete(events):
    return [e for e in events if e["ph"] == "X"]


class TestTraceEvents:
    def test_complete_events_with_microsecond_timeline(self):
        with observing() as obs:
            with span("outer", program="p"):
                time.sleep(0.002)
                with span("inner"):
                    time.sleep(0.001)
        events = _complete(trace_events(obs, pid=42))
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        for e in (outer, inner):
            assert e["ph"] == "X"
            assert e["pid"] == 42
            assert isinstance(e["tid"], int) and e["tid"] > 0
            assert e["dur"] > 0
        # the child starts after its parent and fits inside it
        assert outer["ts"] == 0.0
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0
        assert outer["args"] == {"program": "p"}

    def test_counters_become_instant_event(self):
        with observing() as obs:
            with span("work"):
                count("kernels", 3)
        events = trace_events(obs)
        instants = [e for e in events if e["ph"] == "I"]
        assert len(instants) == 1
        assert instants[0]["args"] == {"kernels": 3}

    def test_thread_metadata_names_every_track(self):
        with observing() as obs:
            with span("main-work"):
                pass
        events = trace_events(obs)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "thread_name"} <= names
        thread_names = [e["args"]["name"] for e in meta if e["name"] == "thread_name"]
        assert "main" in thread_names

    def test_multi_thread_spans_land_on_distinct_tracks(self):
        obs = Observer()

        def worker():
            with obs.span("worker-span"):
                time.sleep(0.001)

        with observing(obs):
            with span("main-span"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        events = _complete(trace_events(obs))
        tids = {e["tid"]: e["name"] for e in events}
        assert len(tids) == 2

    def test_pretimed_spans_get_synthetic_tracks(self):
        # process-pool items arrive as pre-timed spans with no t0
        obs = Observer()
        with observing(obs):
            with span("engine.batch"):
                for i in range(3):
                    obs.attach(
                        Span("engine.batch.item", duration_ms=5.0,
                             meta={"index": i, "mode": "process"})
                    )
        events = _complete(trace_events(obs))
        items = [e for e in events if e["name"] == "engine.batch.item"]
        assert len(items) == 3
        assert {e["tid"] for e in items} == {
            SYNTHETIC_TID_BASE, SYNTHETIC_TID_BASE + 1, SYNTHETIC_TID_BASE + 2
        }
        batch = next(e for e in events if e["name"] == "engine.batch")
        assert all(e["ts"] >= batch["ts"] for e in items)


class TestTraceFile:
    def test_save_trace_writes_loadable_document(self, tmp_path):
        with observing() as obs:
            with span("work"):
                count("n")
        path = save_trace(obs, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # every event has the fields the trace-event schema requires
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert "ts" in e and "dur" in e

    def test_document_shape(self):
        with observing() as obs:
            with span("w"):
                pass
        doc = to_chrome_trace(obs, pid=1)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
