"""Chrome trace-event export: event shape, timeline layout, file output."""

import json
import threading
import time

import pytest

from repro.observe import Observer, observing, span, count
from repro.observe.context import request_scope
from repro.observe.core import Span
from repro.observe.traceevent import (
    SYNTHETIC_TID_BASE,
    save_trace,
    to_chrome_trace,
    trace_events,
    validate_chrome_trace,
)


def _complete(events):
    return [e for e in events if e["ph"] == "X"]


class TestTraceEvents:
    def test_complete_events_with_microsecond_timeline(self):
        with observing() as obs:
            with span("outer", program="p"):
                time.sleep(0.002)
                with span("inner"):
                    time.sleep(0.001)
        events = _complete(trace_events(obs, pid=42))
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        for e in (outer, inner):
            assert e["ph"] == "X"
            assert e["pid"] == 42
            assert isinstance(e["tid"], int) and e["tid"] > 0
            assert e["dur"] > 0
        # the child starts after its parent and fits inside it
        assert outer["ts"] == 0.0
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0
        assert outer["args"]["program"] == "p"
        assert outer["args"]["span_id"]  # correlation id always present

    def test_counters_become_instant_event(self):
        with observing() as obs:
            with span("work"):
                count("kernels", 3)
        events = trace_events(obs)
        instants = [e for e in events if e["ph"] == "I"]
        assert len(instants) == 1
        assert instants[0]["args"] == {"kernels": 3}

    def test_thread_metadata_names_every_track(self):
        with observing() as obs:
            with span("main-work"):
                pass
        events = trace_events(obs)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "thread_name"} <= names
        thread_names = [e["args"]["name"] for e in meta if e["name"] == "thread_name"]
        assert "main" in thread_names

    def test_multi_thread_spans_land_on_distinct_tracks(self):
        obs = Observer()

        def worker():
            with obs.span("worker-span"):
                time.sleep(0.001)

        with observing(obs):
            with span("main-span"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        events = _complete(trace_events(obs))
        tids = {e["tid"]: e["name"] for e in events}
        assert len(tids) == 2

    def test_pretimed_spans_get_synthetic_tracks(self):
        # process-pool items arrive as pre-timed spans with no t0
        obs = Observer()
        with observing(obs):
            with span("engine.batch"):
                for i in range(3):
                    obs.attach(
                        Span("engine.batch.item", duration_ms=5.0,
                             meta={"index": i, "mode": "process"})
                    )
        events = _complete(trace_events(obs))
        items = [e for e in events if e["name"] == "engine.batch.item"]
        assert len(items) == 3
        assert {e["tid"] for e in items} == {
            SYNTHETIC_TID_BASE, SYNTHETIC_TID_BASE + 1, SYNTHETIC_TID_BASE + 2
        }
        batch = next(e for e in events if e["name"] == "engine.batch")
        assert all(e["ts"] >= batch["ts"] for e in items)


class TestTraceFile:
    def test_save_trace_writes_loadable_document(self, tmp_path):
        with observing() as obs:
            with span("work"):
                count("n")
        path = save_trace(obs, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # every event has the fields the trace-event schema requires
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert "ts" in e and "dur" in e

    def test_document_shape(self):
        with observing() as obs:
            with span("w"):
                pass
        doc = to_chrome_trace(obs, pid=1)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}


class TestRequestCorrelation:
    def test_span_args_carry_request_and_span_ids(self):
        with observing() as obs:
            with request_scope(request_id="req-trace"):
                with span("outer"):
                    with span("inner"):
                        pass
        events = _complete(trace_events(obs))
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["args"]["request_id"] == "req-trace"
        assert inner["args"]["request_id"] == "req-trace"
        assert inner["args"]["parent_span_id"] == outer["args"]["span_id"]
        assert "parent_span_id" not in outer["args"]

    def test_synthetic_pool_tracks_carry_request_ids(self):
        # pre-timed process-pool item spans: the attaching parent stamps
        # the request context, and the exporter must surface it per track
        obs = Observer()
        with observing(obs):
            with request_scope(request_id="req-pool"):
                with span("engine.batch"):
                    for i in range(3):
                        obs.attach(
                            Span("engine.batch.item", duration_ms=5.0,
                                 meta={"index": i, "mode": "process"})
                        )
        events = _complete(trace_events(obs))
        items = [e for e in events if e["name"] == "engine.batch.item"]
        batch = next(e for e in events if e["name"] == "engine.batch")
        assert {e["tid"] for e in items} == {
            SYNTHETIC_TID_BASE, SYNTHETIC_TID_BASE + 1, SYNTHETIC_TID_BASE + 2
        }
        for e in items:
            assert e["args"]["request_id"] == "req-pool"
            assert e["args"]["parent_span_id"] == batch["args"]["span_id"]
            assert e["args"]["span_id"]


class TestValidator:
    def _doc(self):
        with observing() as obs:
            with request_scope(request_id="req-v"):
                with span("work", program="p"):
                    count("n")
        return to_chrome_trace(obs)

    def test_real_export_validates_clean(self):
        assert validate_chrome_trace(self._doc()) == []

    def test_non_dict_document(self):
        assert validate_chrome_trace([1, 2, 3])
        assert validate_chrome_trace({"nope": True})

    def test_bad_phase_is_flagged(self):
        doc = self._doc()
        doc["traceEvents"][0]["ph"] = "Z"
        assert any("ph" in p for p in validate_chrome_trace(doc))

    def test_missing_dur_on_complete_event(self):
        doc = self._doc()
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                del e["dur"]
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_negative_ts_is_flagged(self):
        doc = self._doc()
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                e["ts"] = -5.0
        assert any("ts" in p for p in validate_chrome_trace(doc))

    def test_non_integer_tid_is_flagged(self):
        doc = self._doc()
        doc["traceEvents"][0]["tid"] = "main"
        assert any("tid" in p for p in validate_chrome_trace(doc))

    def test_unserializable_args_are_flagged(self):
        doc = self._doc()
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                e["args"] = {"bad": object()}
        assert any("args" in p for p in validate_chrome_trace(doc))

    def test_nameless_event_is_flagged(self):
        doc = self._doc()
        doc["traceEvents"][0]["name"] = ""
        assert any("name" in p for p in validate_chrome_trace(doc))


class TestRunReportRoundTrip:
    def test_trace_out_validates_as_chrome_trace(self, tmp_path):
        # the harness's --trace-out export must round-trip through the
        # validator: process-pool tracks, metadata and args included
        from repro.bench.harness import run_report

        trace_path = tmp_path / "trace.json"
        run_report(batch_items=3, batch_workers=2, trace_out=trace_path)
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine.batch" in names
