"""SLO evaluation: burn-rate math, snapshot parsing, the CI gate."""

import pytest

from repro.observe.metrics import registry as metrics_registry
from repro.observe.slo import (
    DEFAULT_OBJECTIVES,
    SLO_SCHEMA,
    Objective,
    counter_total,
    evaluate_slo,
    fraction_over_threshold,
    gate_slo,
    parse_metric_key,
    record_slo_gauges,
)


def snapshot_with(counters=None, histograms=None):
    """A minimal metrics-snapshot document."""
    return {
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


class TestParsing:
    def test_parse_metric_key_plain(self):
        assert parse_metric_key("serve.requests") == ("serve.requests", {})

    def test_parse_metric_key_labels(self):
        name, labels = parse_metric_key("engine.cache.hits{tier=memory,x=1}")
        assert name == "engine.cache.hits"
        assert labels == {"tier": "memory", "x": "1"}

    def test_counter_total_sums_matching_series(self):
        snap = snapshot_with(counters={
            "serve.requests{family=warm}": 30,
            "serve.requests{family=cold}": 4,
            "serve.rejected": 2,
        })
        assert counter_total(snap, "serve.requests") == 34
        assert counter_total(snap, "serve.requests", family="cold") == 4
        assert counter_total(snap, "serve.nothing") == 0


class TestObjective:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="throughput", target=0.9)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target"):
            Objective(name="x", kind="availability", target=1.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            Objective(name="x", kind="latency", target=0.9)


class TestFractionOverThreshold:
    HIST = {"count": 100, "min": 10.0, "p50": 50.0, "p90": 90.0, "p99": 99.0, "max": 100.0}

    def test_empty_histogram_is_zero(self):
        assert fraction_over_threshold({"count": 0}, 10.0) == 0.0

    def test_below_min_is_all_over(self):
        assert fraction_over_threshold(self.HIST, 5.0) == 1.0

    def test_above_max_is_none_over(self):
        assert fraction_over_threshold(self.HIST, 200.0) == 0.0

    def test_exact_quantile_points(self):
        # at p50 the CDF is 0.5, so half the mass is above
        assert fraction_over_threshold(self.HIST, 50.0) == pytest.approx(0.5)
        assert fraction_over_threshold(self.HIST, 90.0) == pytest.approx(0.1)

    def test_interpolates_between_points(self):
        # halfway between p50 (0.5) and p90 (0.9) -> CDF 0.7 -> 0.3 over
        assert fraction_over_threshold(self.HIST, 70.0) == pytest.approx(0.3)


class TestEvaluate:
    def test_no_traffic_burns_nothing(self):
        doc = evaluate_slo(snapshot_with())
        assert doc["schema"] == SLO_SCHEMA
        assert all(o["burn_rate"] == 0.0 for o in doc["objectives"])
        assert all(o["budget_remaining"] == 1.0 for o in doc["objectives"])

    def test_availability_burn_math(self):
        # 100 submissions, 2 bad, target 0.99 -> error rate 0.02,
        # budget 0.01, burn 2.0
        snap = snapshot_with(counters={
            "serve.requests": 98,
            "serve.rejected": 2,
        })
        obj = Objective(name="avail", kind="availability", target=0.99)
        doc = evaluate_slo(snap, [obj])
        result = doc["objectives"][0]
        assert result["total"] == 100
        assert result["bad"] == 2
        assert result["error_rate"] == pytest.approx(0.02)
        assert result["burn_rate"] == pytest.approx(2.0)
        assert result["budget_remaining"] == pytest.approx(-1.0)

    def test_availability_counts_deadlines_and_failures(self):
        snap = snapshot_with(counters={
            "serve.requests": 100,
            "serve.deadline_exceeded": 3,
            "serve.failed": 1,
        })
        obj = Objective(name="avail", kind="availability", target=0.9)
        result = evaluate_slo(snap, [obj])["objectives"][0]
        assert result["bad"] == 4
        assert result["burn_rate"] == pytest.approx(0.04 / 0.1)

    def test_latency_burn_from_histograms(self):
        hist = {"count": 100, "min": 10.0, "p50": 50.0, "p90": 90.0,
                "p99": 99.0, "max": 100.0}
        snap = snapshot_with(histograms={"serve.compile_ms{family=warm}": hist})
        obj = Objective(name="lat", kind="latency", target=0.95, threshold_ms=90.0)
        result = evaluate_slo(snap, [obj])["objectives"][0]
        # 10% of mass over p90 -> error rate 0.1 against a 0.05 budget
        assert result["error_rate"] == pytest.approx(0.1)
        assert result["burn_rate"] == pytest.approx(2.0)

    def test_default_objectives_cover_both_kinds(self):
        kinds = {o.kind for o in DEFAULT_OBJECTIVES}
        assert kinds == {"availability", "latency"}


class TestGauges:
    def test_record_slo_gauges(self, fresh_metrics_registry):
        snap = snapshot_with(counters={"serve.requests": 10})
        record_slo_gauges(evaluate_slo(snap))
        gauges = metrics_registry().snapshot()["gauges"]
        for objective in DEFAULT_OBJECTIVES:
            assert gauges[f"slo.burn_rate{{objective={objective.name}}}"] == 0.0
            assert gauges[f"slo.budget_remaining{{objective={objective.name}}}"] == 1.0


class TestGate:
    def make_trajectory(self, *sample_metrics):
        samples = [
            {"git_sha": f"sha{i}", "cells": {}, "metrics": m}
            for i, m in enumerate(sample_metrics)
        ]
        return {"samples": samples}

    def test_empty_trajectory_gates_clean(self):
        violations, info = gate_slo({"samples": []})
        assert violations == []
        assert info["sample_sha"] is None

    def test_samples_without_serve_traffic_are_skipped(self):
        trajectory = self.make_trajectory(snapshot_with())
        violations, info = gate_slo(trajectory)
        assert violations == []
        assert info["sample_sha"] is None

    def test_healthy_sample_passes(self):
        trajectory = self.make_trajectory(
            snapshot_with(counters={"serve.requests": 100})
        )
        violations, info = gate_slo(trajectory)
        assert violations == []
        assert info["sample_sha"] == "sha0"
        assert info["objectives"]  # evaluation is reported even when clean

    def test_burning_sample_fails(self):
        trajectory = self.make_trajectory(
            snapshot_with(counters={"serve.requests": 90, "serve.rejected": 10})
        )
        violations, _ = gate_slo(trajectory)
        assert [v["name"] for v in violations] == ["serve-availability"]
        assert violations[0]["burn_rate"] > 1.0

    def test_newest_serve_sample_wins(self):
        # older sample is burning, newest is healthy -> gate passes
        trajectory = self.make_trajectory(
            snapshot_with(counters={"serve.requests": 0, "serve.rejected": 50}),
            snapshot_with(counters={"serve.requests": 100}),
        )
        violations, info = gate_slo(trajectory)
        assert violations == []
        assert info["sample_sha"] == "sha1"

    def test_max_burn_is_respected(self):
        trajectory = self.make_trajectory(
            snapshot_with(counters={"serve.requests": 98, "serve.rejected": 2})
        )
        # burn is 2.0: fails at max 1.0, passes at max 3.0
        assert gate_slo(trajectory, max_burn=1.0)[0]
        assert not gate_slo(trajectory, max_burn=3.0)[0]
