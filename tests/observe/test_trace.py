"""Rewrite tracing: rule events, paths, repeat/normalize iteration counts,
the runaway-repeat path, and the RewriteTrace compatibility shim."""

import pytest

import repro.elevate.core as elevate_core
from repro.elevate import (
    RewriteTrace,
    StrategyError,
    Success,
    apply_once,
    normalize,
    one,
    repeat,
    rule,
    top_down,
)
from repro.observe import TraceCollector, trace_active, tracing
from repro.rise import Identifier, Literal
from repro.rise.dsl import arr, dot, fun, lit, map_

xs = Identifier("xs")


@rule("incrementLiteral")
def increment_literal(expr):
    if isinstance(expr, Literal) and expr.value < 3.0:
        return Literal(expr.value + 1.0)
    return None


@rule("toggleLiteral")
def toggle_literal(expr):
    """Alternates between 0.0 and 1.0 forever — a runaway under repeat."""
    if isinstance(expr, Literal):
        return Literal(1.0 - expr.value)
    return None


class TestTracing:
    def test_inactive_by_default(self):
        assert trace_active() is None

    def test_rule_event_on_success(self):
        with tracing() as t:
            result = increment_literal(lit(1.0))
        assert isinstance(result, Success)
        events = [e for e in t.events if e.succeeded]
        assert len(events) == 1
        event = events[0]
        assert event.rule == "incrementLiteral"
        assert event.path == ()
        assert event.before_nodes == 1 and event.after_nodes == 1
        assert event.wall_ms >= 0.0
        assert t.rule_fired == {"incrementLiteral": 1}

    def test_rule_event_on_failure_keeps_reason(self):
        with tracing() as t:
            increment_literal(xs)
        [event] = t.events
        assert not event.succeeded
        assert event.reason == "pattern did not match"
        assert t.rule_failed == {"incrementLiteral": 1}

    def test_path_tracking_through_traversals(self):
        prog = map_(fun(lambda x: x * lit(2.0)), arr([1, 2]))
        with tracing() as t:
            apply_once(increment_literal)(prog)
        fired = [e for e in t.events if e.succeeded]
        assert len(fired) == 1
        # the literal sits below the root: traversal recorded a real path
        assert len(fired[0].path) >= 1
        assert all(isinstance(step, (int, str)) for step in fired[0].path)

    def test_combinators_counted_not_evented(self):
        with tracing() as t:
            top_down(increment_literal)(lit(1.0))
        # combinator invocations land in strategy_calls, not in events
        assert any(name.startswith("topDown") for name in t.strategy_calls)
        assert all(e.rule == "incrementLiteral" for e in t.events)

    def test_repeat_iteration_counts(self):
        with tracing() as t:
            result = repeat(increment_literal)(lit(0.0))
        assert result.expr.value == 3.0
        [(name, runs)] = t.iterations.items()
        assert name == "repeat(incrementLiteral)"
        assert runs == [3]

    def test_normalize_iterations_recorded(self):
        prog = lit(0.0) + lit(1.0)
        with tracing() as t:
            normalize(increment_literal)(prog)
        assert any(name.startswith("repeat(topDown") for name in t.iterations)
        total = sum(sum(runs) for runs in t.iterations.values())
        assert total == 5  # the two literals incremented to 3.0: 3 + 2 steps

    def test_runaway_repeat_is_traced(self, monkeypatch):
        monkeypatch.setattr(elevate_core, "_MAX_REPEAT", 50)
        with tracing() as t:
            with pytest.raises(StrategyError, match="exceeded 50 steps"):
                repeat(toggle_literal)(lit(0.0))
        assert t.rule_fired["toggleLiteral"] == 50
        assert t.iterations["repeat(toggleLiteral)"] == [50]

    def test_event_cap_keeps_counting(self):
        collector = TraceCollector(max_events=2)
        with tracing(collector):
            for _ in range(5):
                increment_literal(lit(0.0))
        assert len(collector.events) == 2
        assert collector.dropped_events == 3
        assert collector.rule_fired["incrementLiteral"] == 5

    def test_summary_shape(self):
        with tracing() as t:
            repeat(increment_literal)(lit(0.0))
        s = t.summary(k=3)
        assert set(s) == {
            "rule_applications", "rule_failures", "strategy_invocations",
            "distinct_rules", "rule_wall_ms", "events_retained",
            "events_dropped", "top_fired", "top_failed", "iterations",
        }
        assert s["top_fired"][0]["rule"] == "incrementLiteral"
        assert "incrementLiteral" in t.summary_text()


class TestFailureCauses:
    def test_seq_chains_to_deepest_rule_failure(self):
        strategy = apply_once(increment_literal) >> apply_once(increment_literal)
        result = strategy(xs)
        assert not isinstance(result, Success)
        chain = result.chain()
        assert chain[0].strategy is strategy
        deepest = result.deepest()
        assert deepest.strategy.name == "incrementLiteral"
        assert deepest.reason == "pattern did not match"
        assert result.reason_chain().endswith(
            "incrementLiteral: pattern did not match"
        )

    def test_apply_error_surfaces_deepest_reason(self):
        strategy = apply_once(increment_literal) >> apply_once(increment_literal)
        with pytest.raises(StrategyError, match="pattern did not match"):
            strategy.apply(xs)

    def test_one_and_all_wrap_child_failures(self):
        prog = map_(fun(lambda x: x), arr([9, 9]))  # no Literal < 3.0 anywhere
        failure = one(increment_literal)(prog)
        assert not isinstance(failure, Success)
        assert failure.reason == "no child matched"
        assert failure.deepest().reason == "pattern did not match"
        from repro.elevate import all_

        failure = all_(increment_literal)(prog)
        assert failure.reason.startswith("child ")
        assert failure.deepest().reason == "pattern did not match"


class TestRewriteTraceShim:
    def test_steps_and_collector(self):
        from repro.rules.algorithmic import reduce_map_fusion

        trace = RewriteTrace()
        prog = dot(arr([1, 2, 3]))(Identifier("ws"))
        wrapped = trace.wrap(apply_once(reduce_map_fusion))
        wrapped(prog)
        assert len(trace.steps) == 1
        name, before, after = trace.steps[0]
        assert before is prog
        # the shim now also exposes the rule-level trace
        assert trace.collector.rule_fired.get("reduceMapFusion") == 1

    def test_shim_nested_under_external_tracing(self):
        trace = RewriteTrace()
        wrapped = trace.wrap(apply_once(increment_literal))
        with tracing(trace.collector):
            wrapped(lit(0.0))
        assert len(trace.steps) == 1
        assert trace.collector.rule_fired["incrementLiteral"] == 1
