"""Compile-phase profiling: per-program phase timings and node counts."""

from repro.codegen import compile_program
from repro.codegen.cprint import program_to_c
from repro.observe import (
    ProfileCollector,
    compile_profile,
    phase,
    profile_active,
    profiling,
)
from repro.rise import Identifier, array, f32
from repro.rise.dsl import fun, lit, map_seq, reduce_seq, slide

xs = Identifier("xs")
SENV = {"xs": array("n", f32)}


def _sums():
    return map_seq(
        fun(lambda w: reduce_seq(fun(lambda a, b: a + b), lit(0.0), w)),
        slide(3, 1, xs),
    )


class TestPhase:
    def test_inactive_by_default(self):
        assert profile_active() is None
        with phase("anything") as meta:
            meta["x"] = 1  # a throwaway dict; nothing is recorded
        with profiling() as prof:
            pass
        assert prof.profiles == {}

    def test_phases_accumulate_by_name(self):
        with profiling() as prof:
            with compile_profile("p"):
                with phase("fold"):
                    pass
                with phase("fold") as meta:
                    meta["nodes_out"] = 7
        [stat] = prof.profiles["p"].phases.values()
        assert stat.name == "fold"
        assert stat.calls == 2
        assert stat.wall_ms >= 0.0
        assert stat.meta == {"nodes_out": 7}

    def test_unattributed_fallback(self):
        with profiling() as prof:
            with phase("stray"):
                pass
        assert "(unattributed)" in prof.profiles
        assert "stray" in prof.profiles["(unattributed)"].phases


class TestCompilePipeline:
    def test_compile_program_yields_phase_profile(self):
        with profiling() as prof:
            compile_program(_sums(), SENV, "sums")
        profile = prof.profiles["sums"]
        names = set(profile.phases)
        assert {"typecheck", "lower", "fold", "cse"} <= names
        lower = profile.phases["lower"]
        assert lower.meta["ir_nodes"] > 0
        assert profile.meta["rise_nodes"] > 0
        fold = profile.phases["fold"]
        assert fold.meta["nodes_in"] >= fold.meta["nodes_out"] > 0
        assert profile.total_ms() > 0.0

    def test_cprint_phase(self):
        prog = compile_program(_sums(), SENV, "sums")
        with profiling() as prof:
            program_to_c(prog)
        profile = prof.profiles["sums"]
        assert profile.phases["cprint"].meta["chars"] > 0

    def test_to_dict_and_render(self):
        with profiling() as prof:
            compile_program(_sums(), SENV, "sums")
        [d] = prof.to_dict()
        assert d["program"] == "sums"
        assert {p["name"] for p in d["phases"]} >= {"typecheck", "lower"}
        text = prof.render_text()
        assert "sums" in text and "lower" in text

    def test_shared_collector_across_programs(self):
        profiles = ProfileCollector()
        with profiling(profiles):
            compile_program(_sums(), SENV, "a")
        with profiling(profiles):
            compile_program(_sums(), SENV, "b")
        assert set(profiles.profiles) == {"a", "b"}
