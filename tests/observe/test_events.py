"""The structured event log: ring buffer, sinks, rotation, readers."""

import json

import pytest

from repro.observe.context import request_scope
from repro.observe.events import (
    EVENTS_SCHEMA,
    EventLog,
    emit,
    is_failure,
    read_events,
    request_timeline,
)


class TestEmit:
    def test_record_shape(self):
        log = EventLog()
        record = log.emit("serve.admit", key="k1", queue_depth=3)
        assert record["event"] == "serve.admit"
        assert record["key"] == "k1"
        assert record["attrs"] == {"queue_depth": 3}
        assert record["ts"] > 0
        assert record["seq"] == 0
        assert log.events() == [record]

    def test_seq_is_monotonic(self):
        log = EventLog()
        seqs = [log.emit("e")["seq"] for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_request_context_is_stamped(self):
        log = EventLog()
        with request_scope(request_id="req-ev") as ctx:
            record = log.emit("engine.build.start")
        assert record["request_id"] == "req-ev"
        assert record["trace_id"] == ctx.trace_id

    def test_explicit_ids_win_over_context(self):
        log = EventLog()
        with request_scope(request_id="req-active"):
            record = log.emit("e", request_id="req-explicit")
        assert record["request_id"] == "req-explicit"

    def test_no_context_means_none(self):
        log = EventLog()
        record = log.emit("e")
        assert record["request_id"] is None
        assert record["trace_id"] is None

    def test_non_json_attrs_are_coerced(self):
        log = EventLog()
        record = log.emit("e", where=object())
        assert isinstance(record["attrs"]["where"], str)

    def test_ring_is_bounded(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("e", index=i)
        kept = [r["attrs"]["index"] for r in log.events()]
        assert kept == [6, 7, 8, 9]
        assert len(log) == 4

    def test_module_emit_uses_default_log(self, fresh_event_log):
        emit("serve.admit", queue_depth=1)
        assert len(fresh_event_log) == 1
        assert fresh_event_log.events()[0]["event"] == "serve.admit"


class TestFailures:
    def test_is_failure_classification(self):
        assert not is_failure({"attrs": {}})
        assert not is_failure({"attrs": {"outcome": "ok"}})
        assert not is_failure({})
        assert is_failure({"attrs": {"outcome": "error"}})
        assert is_failure({"attrs": {"outcome": "rejected"}})
        assert is_failure({"attrs": {"outcome": "deadline"}})

    def test_failures_returns_last_n(self):
        log = EventLog()
        log.emit("a", outcome="ok")
        log.emit("b", outcome="error")
        log.emit("c")
        log.emit("d", outcome="deadline")
        assert [r["event"] for r in log.failures()] == ["b", "d"]
        assert [r["event"] for r in log.failures(1)] == ["d"]


class TestSink:
    def test_sink_writes_header_and_records(self, tmp_path):
        log = EventLog()
        path = log.open_sink(tmp_path / "events.jsonl")
        log.emit("serve.admit", queue_depth=1)
        log.emit("serve.complete", outcome="ok")
        log.close_sink()
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0]) == {"schema": EVENTS_SCHEMA}
        assert [json.loads(l)["event"] for l in lines[1:]] == [
            "serve.admit",
            "serve.complete",
        ]

    def test_reopening_existing_sink_appends_without_second_header(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.open_sink(path)
        log.emit("first")
        log.close_sink()
        log.open_sink(path)
        log.emit("second")
        log.close_sink()
        lines = path.read_text().strip().splitlines()
        headers = [l for l in lines if "schema" in json.loads(l) and "event" not in json.loads(l)]
        assert len(headers) == 1
        assert [json.loads(l)["event"] for l in lines[1:]] == ["first", "second"]

    def test_rotation_moves_full_file_aside(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.open_sink(path, max_bytes=600)
        for i in range(16):
            log.emit("fill", index=i, padding="x" * 64)
        log.close_sink()
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        # both generations parse, both start with a schema header
        for p in (path, rotated):
            first = json.loads(p.read_text().splitlines()[0])
            assert first == {"schema": EVENTS_SCHEMA}
            assert p.stat().st_size <= 600
        # rotation keeps one older generation; the newest record is always
        # in the live file
        current = list(read_events(path))
        assert current[-1]["attrs"]["index"] == 15
        assert list(read_events(rotated))

    def test_broken_sink_never_raises(self, tmp_path):
        log = EventLog()
        log.open_sink(tmp_path / "events.jsonl")
        log._fh.close()  # simulate the descriptor dying under us
        log.emit("still-works")  # must not raise
        assert log.sink_path is None  # sink detached itself
        assert len(log) == 1


class TestReadBack:
    def test_dump_and_read_round_trip(self, tmp_path):
        log = EventLog()
        with request_scope(request_id="req-rt"):
            log.emit("serve.admit")
            log.emit("serve.complete", outcome="ok", compile_ms=12.5)
        path = log.dump_jsonl(tmp_path / "dump.jsonl")
        records = list(read_events(path))
        assert [r["event"] for r in records] == ["serve.admit", "serve.complete"]
        assert all(r["request_id"] == "req-rt" for r in records)

    def test_read_events_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "someone.else/v9"}\n')
        with pytest.raises(ValueError, match="unknown event schema"):
            list(read_events(path))

    def test_read_events_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not JSON"):
            list(read_events(path))

    def test_request_timeline_orders_and_offsets(self):
        records = [
            {"event": "b", "request_id": "r1", "ts": 10.002, "seq": 2},
            {"event": "a", "request_id": "r1", "ts": 10.000, "seq": 1},
            {"event": "x", "request_id": "r2", "ts": 10.001, "seq": 3},
        ]
        timeline = request_timeline(records, "r1")
        assert [r["event"] for r in timeline] == ["a", "b"]
        assert timeline[0]["dt_ms"] == 0.0
        assert timeline[1]["dt_ms"] == pytest.approx(2.0, abs=0.01)
        assert request_timeline(records, "nobody") == []
