"""Run-report JSON schema stability and rendering."""

import json

import numpy as np

from repro.observe import RunReport
from repro.observe.report import SCHEMA, TOP_LEVEL_KEYS


class TestRunReport:
    def test_schema_and_key_order_are_stable(self):
        report = RunReport(name="r")
        d = report.to_dict()
        # the schema identifier and the exact key order are a contract:
        # downstream tooling parses these reports
        assert d["schema"] == SCHEMA == "repro.observe.report/v2"
        assert tuple(d) == TOP_LEVEL_KEYS == (
            "schema", "name", "environment", "derivation",
            "compile", "engine", "execution", "metrics",
        )

    def test_json_round_trip(self, tmp_path):
        report = RunReport(name="r")
        report.environment = {"chunk": 4}
        report.metrics = {"psnr_db.cbuf": 142.4}
        report.execution = {"cbuf": {"counters": {"exec.kernels": 2}}}
        path = tmp_path / "report.json"
        report.save(path)
        loaded = json.loads(path.read_text())
        assert loaded == report.to_dict()
        assert tuple(loaded) == TOP_LEVEL_KEYS

    def test_numpy_values_serialize(self):
        report = RunReport(name="r")
        report.metrics = {"psnr": np.float64(141.5), "n": np.int64(36)}
        loaded = json.loads(report.to_json())
        assert loaded["metrics"] == {"psnr": 141.5, "n": 36}

    def test_render_text_covers_sections(self):
        report = RunReport(name="demo")
        report.environment = {"chunk": 4}
        report.derivation = {
            "cbuf": {
                "steps": [{"rule": "fuse"}],
                "rules": {
                    "rule_applications": 12,
                    "top_fired": [{"rule": "betaReduction", "count": 7}],
                },
            }
        }
        report.compile = [{
            "program": "rise_cbuf",
            "phases": [{"name": "lower", "wall_ms": 1.5, "calls": 1,
                        "ir_nodes": 40}],
        }]
        report.metrics = {"psnr_db.cbuf": 142.4}
        text = report.render_text()
        for needle in ("demo", "cbuf", "betaReduction", "lower",
                       "ir_nodes=40", "psnr_db.cbuf"):
            assert needle in text


class TestBenchHarnessReport:
    def test_run_report_has_all_sections(self):
        from repro.bench.harness import run_report

        report = run_report(chunk=4, height=20, width=20)
        d = report.to_dict()
        assert tuple(d) == TOP_LEVEL_KEYS
        assert d["derivation"], "expected per-schedule derivation stats"
        for stats in d["derivation"].values():
            assert stats["rules"]["rule_applications"] > 0
        assert d["compile"], "expected compile profiles"
        phase_names = {
            p["name"] for prof in d["compile"] for p in prof["phases"]
        }
        assert {"lower", "fold", "cse"} <= phase_names
        assert d["execution"]["counters"].get("exec.kernels", 0) > 0
        assert d["metrics"]["psnr_db"], "expected per-implementation PSNR"
        assert d["metrics"]["validation_passes"] is True
