"""Metrics registry: instruments, quantiles, exporters, thread safety."""

import json
import random
import threading

import pytest

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    inc,
    observe_value,
    registry,
    reset_registry,
    set_gauge,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_decrease(self):
        c = Counter("hits")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5
        g.add(-2.5)
        assert g.value == 5.0

    def test_histogram_exact_aggregates(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5

    def test_histogram_quantiles_on_known_distribution(self):
        # 1..1000 shuffled fits entirely in the default reservoir, so
        # the quantiles are exact up to linear interpolation
        values = list(range(1, 1001))
        random.Random(3).shuffle(values)
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(500.5, abs=1.0)
        assert h.quantile(0.9) == pytest.approx(900, abs=2.0)
        assert h.quantile(0.99) == pytest.approx(990, abs=2.0)

    def test_histogram_reservoir_stays_bounded_and_representative(self):
        h = Histogram("lat", reservoir=256)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._samples) == 256
        assert h.count == 10_000
        # uniform 0..9999: reservoir-sampled p50 lands near the middle
        assert 3500 <= h.quantile(0.5) <= 6500

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.snapshot() == {"count": 0, "sum": 0.0}
        assert h.quantile(0.5) != h.quantile(0.5)  # NaN


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", tier="x") is not reg.counter("a", tier="y")
        assert len(reg) == 3

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("hits", tier="memory").inc(3)
        reg.gauge("entries").set(5)
        reg.histogram("lat_ms").observe(1.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"hits{tier=memory}": 3}
        assert snap["gauges"] == {"entries": 5.0}
        assert snap["histograms"]["lat_ms"]["count"] == 1
        assert snap["histograms"]["lat_ms"]["p50"] == 1.5

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("engine.cache.hits", tier="memory").inc(3)
        reg.gauge("engine.cache.memory_entries").set(5)
        h = reg.histogram("engine.run.latency_ms", backend="c")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert '# TYPE repro_engine_cache_hits_total counter' in text
        assert 'repro_engine_cache_hits_total{tier="memory"} 3' in text
        assert '# TYPE repro_engine_cache_memory_entries gauge' in text
        assert 'repro_engine_cache_memory_entries 5' in text
        assert '# TYPE repro_engine_run_latency_ms summary' in text
        assert 'repro_engine_run_latency_ms{backend="c",quantile="0.5"} 2' in text
        assert 'repro_engine_run_latency_ms_count{backend="c"} 3' in text
        assert 'repro_engine_run_latency_ms_sum{backend="c"} 6' in text

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0


class TestModuleHelpers:
    def test_default_registry_helpers(self, fresh_metrics_registry):
        inc("t.hits")
        inc("t.hits", 2)
        set_gauge("t.depth", 4)
        observe_value("t.lat", 1.25)
        snap = fresh_metrics_registry.snapshot()
        assert snap["counters"]["t.hits"] == 3
        assert snap["gauges"]["t.depth"] == 4.0
        assert snap["histograms"]["t.lat"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.counter("hits").inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 8000

    def test_concurrent_histogram_observations_are_exact(self):
        reg = MetricsRegistry()

        def hammer():
            for i in range(500):
                reg.histogram("lat").observe(float(i))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        h = reg.histogram("lat")
        assert h.count == 2000
        assert h.min == 0.0
        assert h.max == 499.0
