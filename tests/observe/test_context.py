"""Request-context correlation: scopes, span stamping, thread propagation."""

import contextvars
import threading

from repro.observe import observing, span
from repro.observe.context import (
    RequestContext,
    current_request,
    ensure_request,
    new_request_id,
    new_span_id,
    new_trace_id,
    request_scope,
)


class TestIdentifiers:
    def test_request_ids_are_unique_and_prefixed(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(i.startswith("req-") for i in ids)

    def test_trace_and_span_id_shapes(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)  # hex
        int(new_span_id(), 16)


class TestRequestScope:
    def test_no_scope_means_no_context(self):
        assert current_request() is None

    def test_scope_activates_and_resets(self):
        with request_scope(request_id="req-abc") as ctx:
            assert isinstance(ctx, RequestContext)
            assert ctx.request_id == "req-abc"
            assert current_request() is ctx
        assert current_request() is None

    def test_missing_ids_are_generated(self):
        with request_scope() as ctx:
            assert ctx.request_id.startswith("req-")
            assert len(ctx.trace_id) == 16

    def test_nested_scope_shadows_then_restores(self):
        with request_scope(request_id="outer") as outer:
            with request_scope(request_id="inner"):
                assert current_request().request_id == "inner"
            assert current_request() is outer

    def test_ensure_request_reuses_active_scope(self):
        with request_scope(request_id="req-keep") as outer:
            with ensure_request(request_id="req-ignored") as ctx:
                assert ctx is outer

    def test_ensure_request_opens_scope_when_none(self):
        with ensure_request(request_id="req-new") as ctx:
            assert ctx.request_id == "req-new"
            assert current_request() is ctx
        assert current_request() is None

    def test_to_dict(self):
        ctx = RequestContext(request_id="r", trace_id="t")
        assert ctx.to_dict() == {"request_id": "r", "trace_id": "t"}


class TestSpanStamping:
    def test_spans_carry_request_id_inside_scope(self):
        with observing() as obs:
            with request_scope(request_id="req-s1"):
                with span("outer"):
                    with span("inner"):
                        pass
        outer, inner = obs.flat_spans()
        assert outer.request_id == "req-s1"
        assert inner.request_id == "req-s1"
        assert outer.span_id and inner.span_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""

    def test_span_ids_survive_to_dict(self):
        with observing() as obs:
            with request_scope(request_id="req-d"):
                with span("work"):
                    pass
        doc = obs.spans[0].to_dict()
        assert doc["request_id"] == "req-d"
        assert doc["span_id"]
        assert "parent_id" not in doc  # roots have no parent

    def test_spans_outside_scope_have_no_request_id(self):
        with observing() as obs:
            with span("bare"):
                pass
        assert obs.spans[0].request_id == ""
        assert "request_id" not in obs.spans[0].to_dict()

    def test_copy_context_carries_scope_into_threads(self):
        # the propagation contract the serve layer and BatchRunner rely on
        seen = {}

        def worker():
            ctx = current_request()
            seen["request_id"] = ctx.request_id if ctx else None

        with request_scope(request_id="req-thread"):
            snapshot = contextvars.copy_context()
        t = threading.Thread(target=snapshot.run, args=(worker,))
        t.start()
        t.join()
        assert seen["request_id"] == "req-thread"

    def test_attach_stamps_pretimed_spans(self):
        # process-pool items: the parent attaches pre-timed spans — they
        # still get the parent's request context
        from repro.observe.core import Span

        with observing() as obs:
            with request_scope(request_id="req-pool"):
                with span("engine.batch"):
                    obs.attach(Span("engine.batch.item", duration_ms=1.0))
        batch = obs.spans[0]
        item = batch.children[0]
        assert item.request_id == "req-pool"
        assert item.parent_id == batch.span_id
