"""Tracing must be a pure observer: results with tracing/profiling on are
identical to results with them off (the acceptance bar for the whole
observability layer)."""

import itertools

from repro.codegen import compile_program
from repro.codegen.cprint import program_to_c
from repro.observe import observing, profiling, tracing
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.rise import expr as expr_mod
from repro.rise.traverse import alpha_equal
from repro.strategies import cbuf_version


def _pin_gensym(start: int = 1_000_000) -> None:
    # Fresh names come from a global counter, so two identical pipeline
    # runs differ in variable numbering; pinning the counter makes the
    # runs bit-comparable instead of merely alpha-equivalent.
    expr_mod.Fresh._counter = itertools.count(start)


def _lowered(senv):
    _pin_gensym()
    return cbuf_version(senv, chunk=4).apply(harris(Identifier("rgb")))


class TestTracedEqualsUntraced:
    def test_rewrite_result_identical(self):
        senv = {"rgb": harris_input_type()}
        untraced = _lowered(senv)
        with tracing() as t:
            traced = _lowered(senv)
        assert t.rule_fired, "sanity: the traced run actually recorded rules"
        assert traced == untraced  # bit-identical with the counter pinned
        assert alpha_equal(traced, untraced)

    def test_compiled_code_identical_under_profiling(self):
        senv = {"rgb": harris_input_type()}
        low = _lowered(senv)
        _pin_gensym(2_000_000)
        plain = compile_program(low, senv, "rise_cbuf_eq")
        _pin_gensym(2_000_000)
        with profiling() as prof:
            profiled = compile_program(low, senv, "rise_cbuf_eq")
        assert prof.profiles, "sanity: profiling actually collected phases"
        assert program_to_c(profiled) == program_to_c(plain)

    def test_execution_identical_under_observing(self):
        import numpy as np

        import repro
        from repro.image import synthetic_rgb
        from repro.rise import array, f32
        from repro.rise.dsl import fun, lit, map_seq

        xs = Identifier("xs")
        prog = compile_program(
            map_seq(fun(lambda v: v * lit(2.0)), xs),
            {"xs": array("n", f32)},
            "dbl",
        )
        data = synthetic_rgb(4, 4, seed=3)[0, 0].astype(np.float32)
        pipeline = repro.compile(prog, sizes={"n": data.size})
        plain = pipeline.run(xs=data)
        with observing():
            observed = pipeline.run(xs=data)
        np.testing.assert_array_equal(plain, observed)
