"""Differential verification of discovered schedules.

Includes the regression that motivated fixing the C printer's hardcoded
4-lane vectors: an 8-wide discovered candidate must agree with the naive
reference on *every* available backend, not just the Python one.
"""

import pytest

from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import TUNED_SCHEDULES, tuned_schedule
from repro.tune import verification_sizes, verify_schedule

SENV = {"rgb": harris_input_type()}


def test_verification_sizes_respect_multiples():
    sizes = verification_sizes(32, 8)
    assert sizes["n"] % 32 == 0 and sizes["n"] >= 64  # >= 2 chunks
    assert sizes["m"] % 8 == 0
    assert verification_sizes(1, 1) == {"n": 8, "m": 8}


def test_registered_discovery_passes_the_oracle():
    seed = harris(Identifier("rgb"))
    sched = tuned_schedule("tuned-harris-v1", SENV)
    # the registered discovery uses vectorize(8): this is also the
    # regression test for 8-wide vector codegen on the C backend
    assert any("vectorize(8)" in a for a in TUNED_SCHEDULES["tuned-harris-v1"])
    sizes = verification_sizes(32, 8)
    verdict = verify_schedule(seed, sched, SENV, sizes=sizes, seed=0)
    assert verdict["ok"], verdict
    backends = [c["backend"] for c in verdict["checks"]]
    assert "python" in backends
    for check in verdict["checks"]:
        assert check["report"] is None, check
