"""The autotuner on non-Harris pipelines: pool genericity and search.

ISSUE satellite: nothing in ``repro.tune`` may be Harris-specific.  The
action pool is built from a ``type_env`` alone, so these tests point the
same machinery at registry pipelines — resolve and export schedules
against a zoo ``type_env``, and run a short real beam search on the
Gaussian blur — pinning that the tuner accepts any registered pipeline.
"""

import pytest

from repro.pipelines import registry
from repro.strategies import harris_ix_with_iy, share_stages
from repro.tune.export import schedule_from_actions, size_multiples
from repro.tune.search import TuneConfig, beam_search
from repro.tune.space import default_action_pool, resolve_actions


@pytest.fixture(scope="module")
def blur_env():
    return registry.get("gaussian-blur").type_env()


class TestPoolGenericity:
    def test_share_stages_is_the_paper_pass(self):
        """The generic alias and the paper-named strategy are one object,
        so search logs keep the paper's label."""
        assert share_stages is harris_ix_with_iy
        assert share_stages.name == "harrisIxWithIy"

    def test_pool_builds_from_any_type_env(self, blur_env):
        pool = default_action_pool(blur_env, chunks=(4,), vecs=(4,), strips=(2,))
        names = {a.name for a in pool}
        assert "fuse" in names
        assert "separateConvolutions" in names
        assert any(n.startswith("split(") for n in names)

    def test_resolve_actions_round_trips(self, blur_env):
        pool = default_action_pool(blur_env, chunks=(4,), vecs=(4,), strips=(2,))
        names = [a.name for a in pool]
        resolved = resolve_actions(names, blur_env, chunks=(4,), vecs=(4,), strips=(2,))
        assert [a.name for a in resolved] == names

    def test_resolve_unknown_action_fails_loudly(self, blur_env):
        with pytest.raises(KeyError, match="unknown action"):
            resolve_actions(["no-such-move"], blur_env)

    def test_no_harris_identifiers_in_pool_names(self, blur_env):
        """Regression for the Harris-constant audit: pool action names are
        pipeline-neutral (parametrized by grid factors only)."""
        pool = default_action_pool(blur_env)
        assert not any("harris" in a.name.lower() for a in pool)


class TestZooSchedules:
    def test_schedule_exports_against_zoo_env(self, blur_env):
        sched = schedule_from_actions(
            ["fuse", "vectorize(4)"], blur_env, vecs=(4,), chunks=(4,), strips=(2,)
        )
        assert sched.name.startswith("tuned-")
        assert len(sched.steps) > 2  # actions + completion

    def test_size_multiples_reflect_the_actions(self, blur_env):
        n_mult, m_mult = size_multiples(
            ["fuse", "split(4)+parallel", "vectorize(4)"],
            blur_env,
            chunks=(4,),
            vecs=(4,),
            strips=(2,),
        )
        assert n_mult % 4 == 0
        assert m_mult % 4 == 0


class TestZooBeamSearch:
    def test_short_search_on_gaussian_blur(self, blur_env):
        """A 2-step beam search on a non-Harris pipeline must finish and
        return a costed winner whose actions replay into a schedule."""
        spec = registry.get("gaussian-blur")
        result = beam_search(
            spec.expr(),
            blur_env,
            config=TuneConfig(beam=2, steps=2, chunks=(4,), vecs=(4,), strips=(2,)),
        )
        assert result.best.cost_ms > 0.0
        # The search never returns a candidate worse than the frontier.
        assert result.best.cost_ms <= min(c.cost_ms for c in result.frontier)
        # The winner's recorded actions must resolve against the same env.
        resolved = resolve_actions(
            result.best.actions, blur_env, chunks=(4,), vecs=(4,), strips=(2,)
        )
        assert len(resolved) == len(result.best.actions)
