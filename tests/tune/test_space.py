"""The action pool: naming, grids, round-tripping recorded names."""

import pytest

from repro.pipelines import harris_input_type
from repro.tune import default_action_pool, resolve_actions
from repro.tune.export import discovered_name, size_multiples

SENV = {"rgb": harris_input_type()}


def test_pool_names_are_unique_and_cover_the_grids():
    pool = default_action_pool(SENV)
    names = [a.name for a in pool]
    assert len(names) == len(set(names))
    for c in (16, 32, 64):
        assert f"split({c})+parallel" in names
    for w in (4, 8):
        assert f"vectorize({w})" in names
    for fixed in ("fuse", "separateConvolutions", "circularBufferStages",
                  "rotateValues", "stripParallel(2)"):
        assert fixed in names


def test_strategy_names_match_action_names():
    # search logs, schedule step names and strategy identities must agree
    for action in default_action_pool(SENV):
        assert action.strategy.name == action.name


def test_resolve_actions_round_trips_and_rejects_unknown():
    names = ["fuse", "split(32)+parallel", "vectorize(4)"]
    actions = resolve_actions(names, SENV)
    assert [a.name for a in actions] == names
    with pytest.raises(KeyError, match="split\\(7\\)"):
        resolve_actions(["split(7)+parallel"], SENV)


def test_size_multiples_accumulate_by_lcm():
    n_mult, m_mult = size_multiples(
        ["fuse", "split(32)+parallel", "stripParallel(2)", "vectorize(8)"], SENV
    )
    # n accumulates lcm(1, 32, 2) = 32 from split+strip, m takes the
    # vector width; `fuse` imposes nothing.
    assert (n_mult, m_mult) == (32, 8)


def test_discovered_name_is_deterministic_and_distinguishes():
    a = discovered_name(["fuse", "vectorize(4)"])
    b = discovered_name(["fuse", "vectorize(4)"])
    c = discovered_name(["fuse", "vectorize(8)"])
    assert a == b
    assert a != c
    assert a.startswith("tuned-")
