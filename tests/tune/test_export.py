"""Exported artifacts: schedules from action names, the tuned registry."""

import pytest

from repro.pipelines import harris_input_type
from repro.strategies import TUNED_SCHEDULES, register_tuned_schedule, tuned_schedule
from repro.strategies.schedules import Schedule
from repro.tune import schedule_from_actions
from repro.tune.space import completion_steps

SENV = {"rgb": harris_input_type()}


def test_schedule_from_actions_appends_the_completion_suffix():
    names = ["fuse", "split(32)+parallel"]
    sched = schedule_from_actions(names, SENV)
    assert isinstance(sched, Schedule)
    assert sched.name.startswith("tuned-")
    assert len(sched.steps) == len(names) + len(completion_steps(SENV))
    assert [s.name for s in sched.steps[: len(names)]] == names


def test_registered_discovery_replays_under_its_stable_name():
    assert "tuned-harris-v1" in TUNED_SCHEDULES
    sched = tuned_schedule("tuned-harris-v1", SENV)
    assert sched.name == "tuned-harris-v1"
    actions = TUNED_SCHEDULES["tuned-harris-v1"]
    assert [s.name for s in sched.steps[: len(actions)]] == list(actions)
    with pytest.raises(KeyError, match="tuned-harris-v1"):
        tuned_schedule("tuned-nonexistent", SENV)


def test_register_is_idempotent_but_rejects_silent_redefinition():
    register_tuned_schedule("tuned-test-x", ["fuse"])
    try:
        register_tuned_schedule("tuned-test-x", ["fuse"])  # same actions: fine
        with pytest.raises(ValueError, match="already registered"):
            register_tuned_schedule("tuned-test-x", ["fuse", "vectorize(4)"])
    finally:
        TUNED_SCHEDULES.pop("tuned-test-x", None)
