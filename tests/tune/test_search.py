"""Search invariants: determinism and pruning before scoring.

These are the autotuner's two contracts worth a regression test each:

* **determinism** — the search draws no randomness; two runs with the
  same seed expression, config and objective must produce *identical*
  logs (best candidate hash included), or resumable logs and the CI
  smoke job are meaningless;
* **pruning order** — an action producing an ill-typed expression must
  be pruned by the re-type-check *before* the candidate reaches the
  cost model, or the search would happily optimize garbage the
  typechecker rejects.
"""

import pytest

from repro.elevate.core import Strategy, Success
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.tune import TuneConfig, beam_search, resolve_actions
from repro.tune.space import Action

SENV = {"rgb": harris_input_type()}


@pytest.fixture(scope="module")
def seed_expr():
    return harris(Identifier("rgb"))


def small_pool():
    """Two real moves: enough for a two-step search, cheap to score."""
    return [
        a
        for a in resolve_actions(["fuse", "split(32)+parallel"], SENV)
    ]


@pytest.fixture(scope="module")
def two_runs(seed_expr):
    """The same small search run twice, in fresh sessions."""
    config = TuneConfig(beam=2, steps=2, seed=0)
    first = beam_search(seed_expr, SENV, config=config, pool=small_pool())
    second = beam_search(seed_expr, SENV, config=config, pool=small_pool())
    return first, second


def test_search_is_deterministic(two_runs):
    first, second = two_runs
    assert first.best.hash == second.best.hash
    assert first.best.actions == second.best.actions
    # the whole serialized log must match — frontier order, per-step
    # history, prune accounting (memo hit counts differ only if the
    # search walked a different path)
    assert first.log_document() == second.log_document()


def test_best_candidate_improves_on_seed(two_runs):
    result, _ = two_runs
    assert result.best.actions == ("fuse", "split(32)+parallel")
    assert result.best.hash != result.seed_hash
    assert result.best.n_multiple == 32  # the split's divisibility stuck


def test_ill_typed_rewrites_never_reach_scoring(seed_expr):
    calls = {"n": 0}

    def bad(expr):
        calls["n"] += 1
        # a plainly ill-typed "rewrite": replace the whole program with a
        # free identifier the environment does not type
        return Success(Identifier("no_such_variable"))

    pool = [Action("breakTypes", Strategy(bad, name="breakTypes"))]
    result = beam_search(
        seed_expr, SENV, config=TuneConfig(beam=2, steps=1, seed=0), pool=pool
    )
    assert calls["n"] >= 1  # the action genuinely ran
    assert result.stats["pruned_ill_typed"] >= 1
    # only the seed itself was ever scored: the ill-typed child was
    # pruned by the re-type-check before the cost model saw it
    assert result.stats["scored"] == 1
    assert result.best.actions == ()
    assert result.best.hash == result.seed_hash
