"""Regenerate the paper's evaluation artifacts from the command line.

Prints fig. 1 (normalized A53 comparison), fig. 8 (the full runtime grid),
the section V-B claims, the ablation study, the fig. 7 vector-load model,
and writes everything to CSV files next to this script.

Run:  python examples/evaluation_figures.py [output_dir]
"""

import csv
import sys
from pathlib import Path

from repro.bench import (
    claims,
    fig1_normalized,
    fig8_grid,
    format_fig8,
    run_ablation,
    validate_outputs,
)
from repro.perf import ALL_MACHINES, vector_load_costs


def main(out_dir: str = ".") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    print("=" * 72)
    print("Fig. 1 — Lift / Halide / RISE(cbuf+rot) on Cortex A53 (normalized)")
    print("=" * 72)
    fig1 = fig1_normalized()
    for name, value in fig1.items():
        print(f"  {name:<18} {value:5.2f}  {'#' * int(round(value * 20))}")

    print()
    print("=" * 72)
    print("Fig. 8 — Harris runtimes on four ARM CPUs, two image sizes (ms)")
    print("=" * 72)
    cells = fig8_grid()
    print(format_fig8(cells))
    with (out / "fig8.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["machine", "image", "implementation", "runtime_ms"])
        for cell in cells:
            writer.writerow(
                [cell.machine, cell.image, cell.implementation, f"{cell.runtime_ms:.3f}"]
            )

    print()
    print("=" * 72)
    print("Section V-B claims")
    print("=" * 72)
    for key, value in claims(cells).items():
        print(f"  {key:<26} {value:.2f}" if isinstance(value, float) else f"  {key:<26} {value}")

    print()
    print("=" * 72)
    print("Ablation (Cortex A53, small image)")
    print("=" * 72)
    for row in run_ablation():
        print(f"  {row.variant:<24} {row.runtime_ms:8.1f} ms   {row.slowdown_vs_full:5.2f}x")

    print()
    print("=" * 72)
    print("Fig. 7 — vector-load strategies (cycles per output vector)")
    print("=" * 72)
    for machine in ALL_MACHINES:
        cost = vector_load_costs(machine)
        print(
            f"  {cost.machine:<11} naive {cost.naive_cycles:5.2f}  "
            f"optimized {cost.optimized_cycles:5.2f}  ({cost.speedup:.2f}x)"
        )

    print()
    print("=" * 72)
    print("Output validation (section V-A)")
    print("=" * 72)
    for row in validate_outputs():
        print(
            f"  {row.implementation:<18} PSNR vs Halide: "
            f"{'exact (inf dB)' if row.psnr_vs_halide_db == float('inf') else f'{row.psnr_vs_halide_db:.1f} dB'}"
        )
    print(f"\nCSV written to {out / 'fig8.csv'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
