"""Quickstart: the paper's running example (section II-A).

Builds the high-level dot product

    def dot(a, b) = zip(a, b) |> map(*) |> reduce(+, 0)

applies the ``lowerDot`` optimization strategy — one rewrite rule,
``reduceMapFusion`` — and shows the generated C, which matches the
``dotSeq`` function printed in the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.codegen.cprint import program_to_c
from repro.rise import Identifier, array, f32, type_of
from repro.rise.dsl import fun, lit, map_, map_seq, pipe, reduce_, zip_
from repro.rise.dsl import fst, snd
from repro.strategies import lower_dot


def main() -> None:
    # --- 1. the high-level program: WHAT to compute -----------------------
    a, b = Identifier("a"), Identifier("b")
    dot = pipe(
        zip_(a, b),
        map_(fun(lambda p: fst(p) * snd(p))),
        reduce_(fun(lambda acc, x: acc + x), lit(0.0)),
    )
    env = {"a": array("n", f32), "b": array("n", f32)}
    print("high-level program:")
    print(" ", dot)
    print("type:", type_of(dot, env))

    # --- 2. the optimization strategy: HOW to compute ---------------------
    # lowerDot = applyOnce(reduceMapFusion): fuse the map into a sequential
    # reduction, avoiding the intermediate array.
    lowered = lower_dot.apply(dot)
    print("\nafter lowerDot (reduceMapFusion):")
    print(" ", lowered)

    # --- 3. code generation through the unified front door -----------------
    # The scalar result is wrapped in a 1-element output for code generation.
    # repro.compile returns a cached, runnable CompiledPipeline.
    wrapped = map_seq(fun(lambda unused: lowered), Identifier("one"))
    pipeline = repro.compile(
        wrapped,
        type_env={**env, "one": array(1, f32)},
        name="dotSeq",
        sizes={"n": 8},
    )
    print("\ngenerated C (compare with the paper's dotSeq):")
    print(program_to_c(pipeline.program).split("\n\n")[-1])

    # --- 4. run it ----------------------------------------------------------
    va = np.arange(8.0, dtype=np.float32)
    vb = np.arange(8.0, dtype=np.float32) + 1
    out = pipeline.run(a=va, b=vb, one=np.zeros(1))
    print("dot(a, b) =", float(out[0]), " (numpy:", float(va @ vb), ")")
    assert np.isclose(float(out[0]), float(va @ vb))

    # A second compile of the same program is served from the compile cache.
    again = repro.compile(
        wrapped,
        type_env={**env, "one": array(1, f32)},
        name="dotSeq",
        sizes={"n": 8},
    )
    print("recompile served from cache:", again.cache_status)


if __name__ == "__main__":
    main()
