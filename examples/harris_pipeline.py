"""The paper's case study end to end: the Harris corner detector.

1. builds the high-level pipeline of listing 3;
2. applies the two optimization schedules of listings 5 and 9;
3. compiles, executes the generated code on a synthetic image and checks
   it against the numpy reference (the PSNR validation of section V-A);
4. prints the detected corners as ASCII art and the modeled runtimes on
   the four ARM CPUs of the evaluation.

Run:  python examples/harris_pipeline.py
"""

import numpy as np

from repro.codegen import compile_program
from repro.exec import run_program
from repro.image import psnr, synthetic_rgb, reference
from repro.perf import ALL_MACHINES, estimate_runtime_ms
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_rrot_version, cbuf_version


def ascii_corners(response: np.ndarray, width: int = 48) -> str:
    step_y = max(1, response.shape[0] // 16)
    step_x = max(1, response.shape[1] // width)
    sampled = np.abs(response[::step_y, ::step_x])
    threshold = np.percentile(sampled, 92)
    rows = []
    for row in sampled:
        rows.append("".join("#" if v > threshold and v > 0 else "." for v in row))
    return "\n".join(rows)


def main() -> None:
    rgb = Identifier("rgb")
    senv = {"rgb": harris_input_type()}
    program = harris(rgb)
    print("Harris pipeline (listing 3):", "gray -> sobel x/y -> products ->")
    print("  3x3 sums -> coarsity;", "expressed with map/zip/slide/reduce only.")

    # --- optimize with the two schedules ---------------------------------
    schedules = {
        "cbuf      (listing 5, = reference Halide schedule)": cbuf_version(senv, chunk=4),
        "cbuf+rot  (listing 9, + separation & rotation)": cbuf_rrot_version(senv, chunk=4),
    }

    img = synthetic_rgb(36, 68, seed=11)
    ref = reference.harris(img)
    n, m = ref.shape

    outputs = {}
    for label, schedule in schedules.items():
        low = schedule.apply(program)
        prog = compile_program(low, senv, schedule.name.replace("-", "_"))
        out = run_program(prog, {"n": n, "m": m}, {"rgb": img}).reshape(n, m)
        outputs[label] = (prog, out)
        quality = psnr(ref, out)
        print(f"\n{label}")
        print(f"  output vs numpy reference: PSNR = {quality:.1f} dB")
        assert quality > 100

    print("\ndetected corners (synthetic checkerboard-ish image):")
    print(ascii_corners(ref))

    # --- modeled performance on the paper's CPUs --------------------------
    print("\nmodeled runtime, paper's small image (1536x2560):")
    sizes = {"n": 1536, "m": 2556}
    for label, (prog, _) in outputs.items():
        short = label.split()[0]
        times = ", ".join(
            f"{mach.name.split()[-1]}: {estimate_runtime_ms(prog, sizes, mach, 'opencl').runtime_ms:7.1f} ms"
            for mach in ALL_MACHINES
        )
        print(f"  {short:10} {times}")


if __name__ == "__main__":
    main()
