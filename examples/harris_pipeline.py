"""The paper's case study end to end: the Harris corner detector.

1. builds the high-level pipeline of listing 3;
2. applies the two optimization schedules of listings 5 and 9;
3. compiles, executes the generated code on a synthetic image and checks
   it against the numpy reference (the PSNR validation of section V-A);
4. prints the detected corners as ASCII art and the modeled runtimes on
   the four ARM CPUs of the evaluation.

Run:  python examples/harris_pipeline.py

With ``--trace``, every rewrite is observed: each schedule prints its
step-by-step derivation (the paper's listing 5-9 view) with node counts
and a most-fired-rules summary, compiles under the phase profiler, and a
JSON run report (derivation stats, per-phase codegen timings, PSNR) is
written to ``--report`` (default: harris_report.json).

With ``--trace-out FILE``, the executed kernels (and a parallel batch
run over the synthetic image) are additionally exported as Chrome
trace-event JSON — drop the file on https://ui.perfetto.dev or
``chrome://tracing`` to see the span timeline, one track per worker
thread.
"""

import argparse

import numpy as np

import repro
from repro.engine import ENGINE_REPORT_SCHEMA, default_engine
from repro.image import psnr, synthetic_rgb, reference
from repro.observe import (
    Observer,
    RunReport,
    TraceCollector,
    derivation_stats,
    format_derivation,
    observing,
    profiling,
    save_trace,
    tracing,
)
from repro.perf import ALL_MACHINES, estimate_runtime_ms
from repro.pipelines import harris, harris_input_type
from repro.rise import Identifier
from repro.strategies import cbuf_rrot_version, cbuf_version


def ascii_corners(response: np.ndarray, width: int = 48) -> str:
    step_y = max(1, response.shape[0] // 16)
    step_x = max(1, response.shape[1] // width)
    sampled = np.abs(response[::step_y, ::step_x])
    threshold = np.percentile(sampled, 92)
    rows = []
    for row in sampled:
        rows.append("".join("#" if v > threshold and v > 0 else "." for v in row))
    return "\n".join(rows)


def main(
    trace: bool = False,
    report_path: str = "harris_report.json",
    trace_out: str | None = None,
) -> None:
    # With --trace-out, one shared observer collects every executed
    # kernel span across the whole run for the Chrome trace export.
    trace_obs = Observer() if trace_out else None
    rgb = Identifier("rgb")
    senv = {"rgb": harris_input_type()}
    program = harris(rgb)
    print("Harris pipeline (listing 3):", "gray -> sobel x/y -> products ->")
    print("  3x3 sums -> coarsity;", "expressed with map/zip/slide/reduce only.")

    # --- optimize with the two schedules ---------------------------------
    schedules = {
        "cbuf      (listing 5, = reference Halide schedule)": cbuf_version(senv, chunk=4),
        "cbuf+rot  (listing 9, + separation & rotation)": cbuf_rrot_version(senv, chunk=4),
    }

    img = synthetic_rgb(36, 68, seed=11)
    ref = reference.harris(img)
    n, m = ref.shape

    report = RunReport(name="harris-pipeline-example")
    report.environment = {"chunk": 4, "vec": 4, "n": n, "m": m, "seed": 11}
    profiles = None

    outputs = {}
    for label, schedule in schedules.items():
        if trace:
            # Observed run: derivation steps + rule trace + compile profile.
            collector = TraceCollector()
            with tracing(collector):
                steps = schedule.apply_traced(program)
            low = steps[-1][1]
            print(f"\n=== derivation [{schedule.name}] "
                  f"({label.split()[0]}) ===")
            print(format_derivation(steps, collector))
            report.derivation[schedule.name] = derivation_stats(steps, collector)
            from repro.observe import ProfileCollector

            profiles = profiles or ProfileCollector()
            with profiling(profiles):
                pipeline = repro.compile(
                    low,
                    type_env=senv,
                    name=schedule.name.replace("-", "_"),
                    sizes={"n": n, "m": m},
                )
            with observing() as obs:
                out = pipeline.run(rgb=img).reshape(n, m)
            report.execution[schedule.name] = {
                "counters": dict(sorted(obs.counters.items())),
                "kernel_ms": [
                    round(s.duration_ms, 3)
                    for s in obs.flat_spans()
                    if s.name.startswith("run:")
                ],
            }
        else:
            # The unified front door: rewrite + lower + cache in one call.
            pipeline = repro.compile(
                program,
                strategy=schedule,
                type_env=senv,
                name=schedule.name.replace("-", "_"),
                sizes={"n": n, "m": m},
            )
            out = pipeline.run(rgb=img).reshape(n, m)
        prog = pipeline.program
        outputs[label] = (prog, out)
        quality = psnr(ref, out)
        report.metrics[f"psnr_db.{schedule.name}"] = round(float(quality), 2)
        print(f"\n{label}")
        print(f"  output vs numpy reference: PSNR = {quality:.1f} dB")
        assert quality > 100

    if trace_obs is not None:
        # A parallel batch run under the shared observer: the exported
        # Chrome trace shows one track per worker thread.
        with observing(trace_obs):
            batch = pipeline.run_batch(
                [{"rgb": synthetic_rgb(36, 68, seed=11 + i)} for i in range(8)],
                workers=2,
                mode="thread",
            )
        path = save_trace(trace_obs, trace_out)
        print(f"\nbatch: {len(batch)} items ({batch.mode}, "
              f"{batch.throughput_items_per_s:.1f} items/s)")
        print(f"wrote Chrome trace: {path}  (open in https://ui.perfetto.dev)")

    print("\ndetected corners (synthetic checkerboard-ish image):")
    print(ascii_corners(ref))

    # --- modeled performance on the paper's CPUs --------------------------
    print("\nmodeled runtime, paper's small image (1536x2560):")
    sizes = {"n": 1536, "m": 2556}
    for label, (prog, _) in outputs.items():
        short = label.split()[0]
        times = ", ".join(
            f"{mach.name.split()[-1]}: {estimate_runtime_ms(prog, sizes, mach, 'opencl').runtime_ms:7.1f} ms"
            for mach in ALL_MACHINES
        )
        print(f"  {short:10} {times}")
        report.metrics[f"modeled_runtime_ms.{prog.name}"] = {
            mach.name: round(
                estimate_runtime_ms(prog, sizes, mach, "opencl").runtime_ms, 2
            )
            for mach in ALL_MACHINES
        }

    if trace:
        report.compile = profiles.to_dict() if profiles is not None else []
        report.engine = {
            "schema": ENGINE_REPORT_SCHEMA,
            "cache": default_engine().stats(),
        }
        report.save(report_path)
        print(f"\nwrote run report: {report_path}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the step-by-step derivation and write a JSON run report",
    )
    parser.add_argument(
        "--report",
        default="harris_report.json",
        help="run-report path (with --trace)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="export executed kernels + a parallel batch run as Chrome "
        "trace-event JSON (Perfetto-loadable)",
    )
    args = parser.parse_args()
    main(trace=args.trace, report_path=args.report, trace_out=args.trace_out)
