"""Domain extensibility in practice (the paper's core thesis, fig. 2).

Everything here happens OUTSIDE the compiler core:

1. a new pipeline — unsharp masking — written with the same macro layer
   (conv3x3 / sum3x3 / zip2d) as Harris;
2. a new, user-defined rewrite rule registered as a plain decorated
   function — nothing in repro.rise or repro.elevate changes;
3. a schedule assembled from *reused* generic strategies plus the new rule;
4. compilation and validation of the optimized pipeline.

Run:  python examples/extending_the_compiler.py
"""

import numpy as np

import repro
from repro.elevate import normalize, rule, try_
from repro.image import synthetic_rgb, reference
from repro.nat import nat
from repro.pipelines.operators import conv3x3, map2d, sum3x3, zip2d
from repro.rise import Identifier, array2d, f32
from repro.rise.dsl import arr, fst, fun, lit, snd
from repro.rise.expr import Expr
from repro.rules.conv import separate_conv_line, separate_conv_line_zip
from repro.strategies import (
    fuse_operators,
    harris_ix_with_iy,
    parallel,
    sequential,
    simplify,
    split_pipeline,
    unroll_reductions,
    vectorize_reductions,
)
from repro.strategies.schedules import Schedule


# --- 1. a new pipeline: unsharp masking ------------------------------------
def unsharp(image: Expr, amount: float = 1.5) -> Expr:
    """sharpened = (1 + amount) * center - amount * blur(image).

    The blur is a normalized 3x3 box filter; the center tap is selected
    with a one-hot convolution kernel so the whole pipeline stays inside
    the generic pattern language (no new primitives needed).
    """
    center_kernel = arr([[0, 0, 0], [0, 1, 0], [0, 0, 0]])
    center = conv3x3(center_kernel, image)
    blurred = map2d(fun(lambda v: v * lit(1.0 / 9.0)), sum3x3(image))
    return map2d(
        fun(lambda p: lit(1.0 + amount) * fst(p) - lit(amount) * snd(p)),
        zip2d(center, blurred),
    )


# --- 2. a user-defined rewrite rule -----------------------------------------
@rule("dropUnitMultiply")
def drop_unit_multiply(expr: Expr):
    """A domain-specific cleanup: after fusion the one-hot center kernel
    leaves a multiply by literal 1.0; remove it so the center tap costs
    nothing.  Defined here, in user code — the compiler is untouched.
    """
    from repro.rise.expr import Literal, ScalarOp
    from repro.rise.traverse import app_spine

    head, args = app_spine(expr)
    if isinstance(head, ScalarOp) and head.op == "mul" and len(args) == 2:
        if isinstance(args[0], Literal) and args[0].value == 1.0:
            return args[1]
        if isinstance(args[1], Literal) and args[1].value == 1.0:
            return args[0]
    return None


def main() -> None:
    img_id = Identifier("img")
    n, m = nat("n"), nat("m")
    # one 3x3 stage: [n+2][m+2] input -> [n][m] output
    senv = {"img": array2d(n + 2, m + 2, f32)}
    program = unsharp(img_id)

    # --- 3. a schedule from reused strategies + the new rule --------------
    schedule = Schedule(
        name="unsharp-optimized",
        steps=[
            fuse_operators,
            try_(normalize(drop_unit_multiply)),
            harris_ix_with_iy,  # the generic sharing pass, reused as-is
            split_pipeline(4),
            parallel,
            simplify,
            harris_ix_with_iy,
            try_(normalize(separate_conv_line | separate_conv_line_zip)),
            vectorize_reductions(4, senv),
            sequential,
            unroll_reductions,
        ],
    )
    pipeline = repro.compile(
        program, strategy=schedule, type_env=senv, name="unsharp",
        sizes={"n": 16, "m": 20},
    )

    # --- 4. validate --------------------------------------------------------
    image = synthetic_rgb(18, 22, seed=3)[0]
    out = pipeline.run(img=image).reshape(16, 20)

    blur = reference.sum3x3(image) / 9.0
    center = image[1:-1, 1:-1]
    expected = 2.5 * center - 1.5 * blur
    np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)
    print("unsharp masking: optimized pipeline matches the numpy reference")
    print("  schedule steps:", " ; ".join(s.name.split("(")[0] for s in schedule.steps))
    print("  new rule:", drop_unit_multiply.name)
    print("  output sample:", np.round(out[0, :5], 3).tolist())


if __name__ == "__main__":
    main()
